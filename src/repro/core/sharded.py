"""Sharded execution: nested-query processing on a modelled device group.

One :class:`~repro.core.executor.NestGPU` engine owns one device.  The
:class:`ShardedEngine` below runs the *same* drive programs across N
modelled devices (:class:`~repro.gpu.group.DeviceGroup`) joined by a
modelled interconnect, the classic scatter-gather shape:

1. **Split** the solo plan into a *body* (everything up to the root
   chain of Limit/Sort/Distinct/Aggregate/Project) and that *tail*.
2. **Choose a driving scan** — a base-table scan of the body reachable
   through row-wise operators only, so that running the body over a
   partition of that scan and concatenating the per-shard outputs
   yields exactly the solo body rows.
3. **Place every other scan**: replicate it in full on each shard
   (*broadcast*), or — when a correlated subquery filters an inner
   scan with an equality on an outer column (``ic = $outer.oc``) —
   hash-repartition both sides on the correlation key (*shuffle*), so
   every inner row an outer binding can match lives on that binding's
   shard.  The choice is costed: broadcast pays N full host-to-device
   copies, shuffle pays home-slice loads plus peer-link traffic but
   loops over 1/N of the inner rows per iteration.
4. **Drive** the generated body program once per shard against that
   shard's catalog (the program references tables by *name*, so one
   compiled program runs against N different shard catalogs).
5. **Gather** the per-shard partials onto the coordinator (device 0)
   over its incoming links, run the tail there, and pay the single
   device-to-host fetch.

Placement model: the host holds every base table; a shard's *home*
slice of a table is its round-robin share.  A ``full`` placement loads
the whole table over the shard's own PCIe link; an ``rr`` placement
loads just the home slice; a ``hash`` placement loads the home slice
and then redistributes it over the peer interconnect so rows land on
``hash(key) % N``.  All placements are resident forms in the shard's
:class:`~repro.engine.context.ColumnResidency`, so repeat queries skip
the exchange exactly like repeat solo queries skip the PCIe load.

Clock model: shard clocks advance independently; a query's *makespan*
is the slowest shard's body completion plus the coordinator's gather +
tail + fetch delta.  ``QueryResult.stats`` holds the group-merged
device-seconds (flows add, peaks take the worst device) so modelled
totals stay comparable with solo runs; ``QueryResult.makespan_ns`` is
the wall-clock figure the scheduler and benches report.

``shards=1`` delegates *wholly* to the wrapped solo engine — rows and
modelled totals are bit-identical to a plain :class:`NestGPU` by
construction, which the test suite pins.
"""

from __future__ import annotations

import copy
from dataclasses import asdict, dataclass, field

import numpy as np

from ..engine import EngineOptions, ExecutionContext
from ..engine import operators as ops
from ..engine.context import ColumnResidency
from ..engine.relation import Relation
from ..gpu import DeviceGroup, DeviceSpec, PoolSet, RawDeviceAllocator
from ..gpu.spec import InterconnectSpec
from ..obs.tracer import NULL_TRACER
from ..plan import ExchangeStep
from ..plan.builder import PlanBuilder
from ..plan.expressions import ColRef, contains_subquery
from ..plan.nodes import (
    Aggregate,
    CrossJoin,
    Distinct,
    Filter,
    Join,
    LeftLookup,
    Limit,
    Plan,
    Project,
    Scan,
    SemiJoin,
    Sort,
    SubqueryColumn,
    SubqueryFilter,
    explain as explain_plan,
)
from ..storage import (
    Catalog,
    Column,
    PartitionSpec,
    hash_buckets,
    partition_table,
)
from .calibrator import CostCoefficients
from .codegen import DriveProgram, generate_drive_program
from .fusion import FusionPlan
from .costmodel import _kernel_ns, gather_cost_ns, repartition_cost_ns
from .executor import NestGPU, PreparedQuery, QueryResult, preload_columns
from .runtime import Runtime, SubqueryProgram
from .vectorize import _equality_correlation

#: Node types the coordinator tail may contain (root chain only).
_TAIL_TYPES = (Limit, Sort, Distinct, Aggregate, Project)


# -- plan analysis ----------------------------------------------------------


def _node_exprs(node: Plan):
    """The expressions a tail-candidate node evaluates."""
    if isinstance(node, Aggregate):
        yield from node.groups
        for agg in node.aggs:
            if agg.arg is not None:
                yield agg.arg
        if node.having is not None:
            yield node.having
    elif isinstance(node, Project):
        yield from node.exprs


def split_tail(plan: Plan) -> tuple[Plan, list[Plan]]:
    """Split a solo plan into (body, tail).

    The tail is the maximal root chain of Limit/Sort/Distinct/
    Aggregate/Project nodes whose expressions contain no subquery —
    exactly the operators that are correct to run *once* on the
    concatenation of per-shard body outputs.  Returned root-first.
    """
    tail: list[Plan] = []
    node = plan
    while isinstance(node, _TAIL_TYPES):
        if any(contains_subquery(e) for e in _node_exprs(node)):
            break
        tail.append(node)
        node = node.child
    return node, tail


def candidate_scans(body: Plan) -> list[Scan]:
    """Base-table scans of the body that can legally drive a partition.

    A scan qualifies when every operator between it and the body root
    is *row-wise* — each output row derives from exactly one row of the
    scan — so a union of per-partition body outputs equals the solo
    body output.  Joins qualify on both sides (each match consumes one
    row of either input); semi-joins and lookups only through their
    probe child; aggregation, distinct, sort, limit and derived scans
    stop the walk.
    """
    found: list[Scan] = []

    def visit(node: Plan) -> None:
        if isinstance(node, Scan):
            found.append(node)
        elif isinstance(node, (Join, CrossJoin)):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, (Filter, SubqueryFilter, SubqueryColumn)):
            visit(node.child)
        elif isinstance(node, (SemiJoin, LeftLookup)):
            visit(node.child)
        # Aggregate/Distinct/Sort/Limit/Project/DerivedScan: not
        # row-wise (or hide a sub-plan) — stop.

    visit(body)
    return found


def _scan_correlations(scan: Scan) -> dict[str, object]:
    """``qual -> inner ColRef`` for the scan's equality-correlated filters."""
    out: dict[str, object] = {}
    for predicate in scan.filters:
        matched = _equality_correlation(predicate)
        if matched is not None:
            col, qual = matched
            out[qual] = col
    return out


def _rr_rows(num_rows: int, shards: int, shard: int) -> int:
    """Rows of the round-robin home slice of shard ``shard``."""
    if shard >= num_rows:
        return 0
    return (num_rows - shard + shards - 1) // shards


# -- prepared form ----------------------------------------------------------


@dataclass
class _Placement:
    """One scan's table placement under a strategy (for costing)."""

    table: str
    form: str  # 'full' | 'rr' | 'hash'
    key: str | None
    columns: tuple[str, ...]
    nbytes: int  # referenced bytes on a full-table basis


@dataclass
class ShardedPrepared:
    """A query planned for a device group, ready to run.

    ``strategy`` is one of ``solo`` (group of one: full delegation),
    ``coordinator`` (no legal driving scan: the solo program runs on
    shard 0 alone), ``scatter`` (partitioned drive, no correlated
    subqueries), ``broadcast`` (partitioned drive, inner tables
    replicated) or ``shuffle`` (both sides hash-repartitioned on the
    correlation key).
    """

    solo: PreparedQuery
    strategy: str
    program: DriveProgram | None = None
    body: Plan | None = None
    tail: list = field(default_factory=list)
    exchanges: list[ExchangeStep] = field(default_factory=list)
    #: (table, key, referenced columns) per hash form to materialise
    hash_exchanges: list[tuple[str, str, tuple[str, ...]]] = field(
        default_factory=list
    )
    decision: dict = field(default_factory=dict)
    per_shard_bytes: list[int] = field(default_factory=list)
    sql: str = ""

    @property
    def choice(self) -> str:
        return self.solo.choice

    @property
    def predicted_ms(self) -> float | None:
        return self.solo.predicted_ms


class _ShardState:
    """Everything one shard owns across queries: device, catalog forms,
    pools, residency, index cache, and the execution context tying them
    together."""

    def __init__(self, engine: "ShardedEngine", shard_id: int, device):
        self.id = shard_id
        self.device = device
        self.catalog = Catalog(list(engine.catalog))
        self.pools = PoolSet(device)
        self.raw_alloc = RawDeviceAllocator(device)
        self.residency = ColumnResidency(device, lru=True)
        self.index_cache: dict[tuple, object] = {}
        self.ctx = ExecutionContext(
            self.catalog,
            device,
            engine.options,
            pools=self.pools,
            raw_alloc=self.raw_alloc,
            residency=self.residency,
            index_cache=self.index_cache,
        )


class ShardedEngine:
    """NestGPU across a device group: partitioned drive, exchanges,
    scatter-gather subquery execution.

    Wraps a solo :class:`NestGPU` (the *planner*) for parsing, binding,
    planning, path choice and code generation, then re-plans data
    placement for the group.  With ``shards=1`` every call delegates to
    the planner unchanged — bit-identical rows and modelled totals.
    """

    def __init__(
        self,
        catalog: Catalog,
        device: DeviceSpec | None = None,
        options: EngineOptions | None = None,
        mode: str = "auto",
        shards: int = 1,
        interconnect: InterconnectSpec | None = None,
        tracer=None,
        metrics=None,
        coefficients: CostCoefficients | None = None,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.catalog = catalog
        self.shards = shards
        self.planner = NestGPU(
            catalog,
            device=device,
            options=options,
            mode=mode,
            coefficients=coefficients,
        )
        self.device_spec = self.planner.device_spec
        self.options = self.planner.options
        self.mode = self.planner.mode
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = metrics
        self.interconnect = interconnect or InterconnectSpec.pcie_p2p()
        self.group = DeviceGroup(
            self.device_spec, shards, self.interconnect, tracer=self.tracer
        )
        self._shards = [
            _ShardState(self, k, self.group[k]) for k in range(shards)
        ]
        self._base_version = catalog.version
        self._pair_cache: dict[tuple[str, str], np.ndarray] = {}

    # -- public API -----------------------------------------------------

    def execute(
        self, sql: str, mode: str | None = None, tracer=None, metrics=None
    ) -> QueryResult:
        prepared = self.prepare(sql, mode, tracer=tracer)
        return self.run_prepared(prepared, tracer=tracer, metrics=metrics)

    def prepare(
        self, sql: str, mode: str | None = None, tracer=None
    ) -> ShardedPrepared:
        """Plan a query for the group: solo plan + placement + exchanges."""
        tracer = self.tracer if tracer is None else tracer
        self._sync_catalog()
        solo = self.planner.prepare(sql, mode, tracer=tracer)
        if self.shards == 1:
            return ShardedPrepared(solo=solo, strategy="solo", sql=sql)
        with tracer.span("shard-plan", "phase", shards=self.shards):
            return self._plan_group(solo, sql)

    def run_prepared(
        self,
        prepared: ShardedPrepared,
        tracer=None,
        metrics=None,
        observed: bool = True,
    ) -> QueryResult:
        """Execute across the group; see the module docstring for the
        exchange → scatter drive → gather → tail pipeline."""
        if observed:
            tracer = self.tracer if tracer is None else tracer
            metrics = self.metrics if metrics is None else metrics
        else:
            tracer, metrics = NULL_TRACER, None
        if prepared.strategy == "solo":
            # a group of one IS the solo engine (bit-identity pin)
            return self.planner.run_prepared(
                prepared.solo, tracer=tracer, metrics=metrics
            )
        self._sync_catalog()
        self.group.reset(rebase_peak=True)
        pair_before = dict(self.group.pair_bytes)
        try:
            if prepared.strategy == "coordinator":
                result = self._run_coordinator(prepared, tracer)
            else:
                result = self._run_scatter_gather(prepared, tracer)
        finally:
            for state in self._shards:
                state.ctx.end_query()
        pair_delta = {
            f"{src}->{dst}": total - pair_before.get((src, dst), 0)
            for (src, dst), total in self.group.pair_bytes.items()
            if total - pair_before.get((src, dst), 0) > 0
        }
        result.group_report["pair_bytes"] = pair_delta
        if metrics is not None:
            self._record_group_metrics(metrics, prepared, result)
        return result

    @property
    def shard_states(self) -> list[_ShardState]:
        """Per-shard standing state, in device order (read-only use)."""
        return self._shards

    @property
    def declared_version(self) -> int:
        """The newest catalog version this engine itself produced.

        Partition-form declarations bump ``Catalog.version`` like a data
        reload does; callers tracking the version for cache invalidation
        (the session) use this to tell the two apart — a version equal
        to ``declared_version`` is our own metadata write.
        """
        return self._base_version

    def release(self) -> None:
        """Release every shard's standing device state (session close)."""
        for state in self._shards:
            state.pools.release_all()
            state.raw_alloc.free_all()
            state.residency.release_all()
            state.index_cache.clear()
        self._pair_cache.clear()

    def drive_source(self, sql: str, mode: str | None = None) -> str:
        """The generated per-shard drive program (for inspection)."""
        prepared = self.prepare(sql, mode)
        program = prepared.program or prepared.solo.program
        return program.source

    def explain(self, sql: str, mode: str | None = None,
                analyze: bool = False) -> str:
        """The distributed EXPLAIN: strategy, costed decision, exchanges,
        per-shard body and coordinator tail.

        ``analyze`` delegates to the solo planner (EXPLAIN ANALYZE
        instruments one device's operator tree; the group's per-device
        story lives in the group report / device trace instead).
        """
        if analyze:
            return self.planner.explain(sql, mode, analyze=True)
        prepared = self.prepare(sql, mode)
        if prepared.strategy == "solo":
            return self.planner.explain(sql, mode)
        lines = [
            f"device group: {self.shards} x {self.device_spec.name} "
            f"over {self.interconnect.name}",
            f"execution path: {prepared.choice}",
            f"shard strategy: {prepared.strategy}",
        ]
        decision = prepared.decision
        if decision.get("broadcast_ns") is not None:
            lines.append(
                f"  broadcast est: {decision['broadcast_ns'] / 1e6:.3f} ms"
            )
        if decision.get("shuffle_ns") is not None:
            lines.append(
                f"  shuffle est:   {decision['shuffle_ns'] / 1e6:.3f} ms"
                f" (on {decision.get('shuffle_qual')})"
            )
        if decision.get("reason"):
            lines.append(f"  reason: {decision['reason']}")
        if decision.get("driving"):
            lines.append(f"driving scan: {decision['driving']}")
        if prepared.exchanges:
            lines.append("exchanges:")
            for step in prepared.exchanges:
                lines.append(f"  {step.describe()}")
        if prepared.body is not None:
            lines.append("")
            lines.append("body plan (each shard):")
            lines.append(explain_plan(prepared.body, indent=1))
        if prepared.tail:
            lines.append("")
            lines.append("coordinator tail (after gather):")
            for node in prepared.tail:
                lines.append(f"  {node}")
        return "\n".join(lines)

    # -- group planning -------------------------------------------------

    def _plan_group(self, solo: PreparedQuery, sql: str) -> ShardedPrepared:
        # deepcopy before splitting: scan rewrites must not touch the
        # solo plan (it stays valid for EXPLAIN / the planner's cache)
        body, tail = split_tail(copy.deepcopy(solo.plan))
        builder = PlanBuilder(
            self.catalog,
            unnest=(solo.choice == "unnested"),
            exact_selectivity=self.planner.selectivity,
        )
        # the body program inherits the solo plan's fusion state, so a
        # fused engine runs fused on every shard (and `--no-fusion`
        # totals stay bit-identical to pre-fusion sharded runs)
        body_fusion = (
            FusionPlan() if solo.program.fusion is not None else None
        )
        program = generate_drive_program(
            builder, body, fetch_result=False, fusion=body_fusion
        )
        spec_scans = [
            node
            for spec in program.specs
            for node in spec.plan.walk()
            if isinstance(node, Scan)
        ]
        candidates = candidate_scans(body)
        if not candidates:
            return ShardedPrepared(
                solo=solo,
                strategy="coordinator",
                decision={"reason": "no row-wise driving scan in the body"},
                per_shard_bytes=[self._solo_bytes(solo)]
                + [0] * (self.shards - 1),
                sql=sql,
            )
        correlated = any(
            spec.descriptor.is_correlated for spec in program.specs
        )
        decision = self._decide(body, program, candidates, spec_scans)
        strategy = decision["chosen"]
        if not correlated and strategy == "broadcast":
            strategy = "scatter"
            decision["chosen"] = "scatter"
        driving: Scan = decision.pop("_driving_scan")
        hash_nodes: dict[int, str] = decision.pop("_hash_nodes")
        exchanges, hash_exchanges = self._apply_placement(
            body, program, spec_scans, driving, strategy, hash_nodes,
            decision,
        )
        per_shard = [
            sum(
                state.catalog.table(t).column(c).nbytes
                for t, c in preload_columns(state.catalog, program)
            )
            for state in self._shards
        ]
        return ShardedPrepared(
            solo=solo,
            strategy=strategy,
            program=program,
            body=body,
            tail=tail,
            exchanges=exchanges,
            hash_exchanges=hash_exchanges,
            decision=decision,
            per_shard_bytes=per_shard,
            sql=sql,
        )

    def _solo_bytes(self, solo: PreparedQuery) -> int:
        return sum(
            self.catalog.table(t).column(c).nbytes
            for t, c in preload_columns(self.catalog, solo.program)
        )

    def _scan_columns(self, scan: Scan) -> tuple[str, ...]:
        table = self.catalog.table(scan.table)
        return tuple(scan.columns or table.column_names)

    def _scan_bytes(self, scan: Scan) -> int:
        table = self.catalog.table(scan.table)
        return sum(
            table.column(c).nbytes for c in self._scan_columns(scan)
        )

    def _decide(
        self,
        body: Plan,
        program: DriveProgram,
        candidates: list[Scan],
        spec_scans: list[Scan],
    ) -> dict:
        """Cost broadcast vs shuffle; returns the decision record plus
        the chosen driving scan and per-node hash assignments."""
        spec = self.device_spec
        shards = self.shards
        body_scans = [n for n in body.walk() if isinstance(n, Scan)]

        def placements_cost(placements: dict) -> float:
            total = 0.0
            for p in placements.values():
                if p.form == "full":
                    total += p.nbytes / spec.pcie_bytes_per_ns
                    continue
                total += (p.nbytes / shards) / spec.pcie_bytes_per_ns
                if p.form == "hash":
                    total += repartition_cost_ns(
                        self.interconnect, shards, p.nbytes
                    )
            return total

        def add_placement(placements, scan, form, key=None):
            pkey = (scan.table.lower(), form, key)
            cols = self._scan_columns(scan)
            existing = placements.get(pkey)
            if existing is not None:
                merged = tuple(dict.fromkeys(existing.columns + cols))
                existing.columns = merged
                table = self.catalog.table(scan.table)
                existing.nbytes = sum(
                    table.column(c).nbytes for c in merged
                )
                return
            placements[pkey] = _Placement(
                scan.table, form, key, cols, self._scan_bytes(scan)
            )

        def iterations(driving: Scan) -> float:
            rows = self.catalog.table(driving.table).num_rows
            est = driving.estimated_rows or rows
            return max(float(est), 1.0)

        def join_co_partitions(driving: Scan, outer_col: str) -> dict:
            """Body scans equi-joined with the driving scan *on the
            partition key*: hashing them on their join column co-locates
            every matching pair, so they ride the shuffle instead of
            being replicated (an inner equi-join row exists only where
            the keys are equal, i.e. in exactly one bucket)."""
            by_binding = {
                s.binding: s for s in candidates if s is not driving
            }
            co: dict[int, str] = {}
            for node in body.walk():
                if not isinstance(node, Join):
                    continue
                for near, far in (
                    (node.left_key, node.right_key),
                    (node.right_key, node.left_key),
                ):
                    if not (
                        isinstance(near, ColRef) and isinstance(far, ColRef)
                    ):
                        continue
                    if (near.binding != driving.binding
                            or near.column != outer_col):
                        continue
                    scan = by_binding.get(far.binding)
                    if scan is None or id(scan) in co:
                        continue
                    table = self.catalog.table(scan.table)
                    if (far.column not in table
                            or table.column(far.column).dtype.is_string):
                        continue
                    co[id(scan)] = far.column
            return co

        # broadcast: drive the biggest safe scan, replicate the rest
        bcast_driving = max(candidates, key=self._scan_bytes)
        bcast_placements: dict = {}
        add_placement(bcast_placements, bcast_driving, "rr")
        for scan in body_scans + spec_scans:
            if scan is bcast_driving:
                continue
            add_placement(bcast_placements, scan, "full")
        bcast_loop = sum(
            _kernel_ns(spec, self.catalog.table(s.table).num_rows)
            for s in spec_scans
        )
        broadcast_ns = placements_cost(bcast_placements) + (
            iterations(bcast_driving) / shards
        ) * bcast_loop

        # shuffle: for each (safe driving scan, correlation qual) pair,
        # hash-partition the driving scan on the outer column and every
        # inner scan carrying `ic = $qual` on its inner column
        quals = {
            q for s in spec_scans for q in _scan_correlations(s)
        }
        best = None
        for driving in candidates:
            table = self.catalog.table(driving.table)
            for qual in sorted(quals):
                binding, _, outer_col = qual.partition(".")
                if binding != driving.binding:
                    continue
                if outer_col not in table:
                    continue
                if table.column(outer_col).dtype.is_string:
                    # per-column dictionaries make string codes
                    # incomparable across columns — never hash them
                    continue
                hash_nodes: dict[int, str] = {}
                for scan in spec_scans:
                    col = _scan_correlations(scan).get(qual)
                    if col is None or col.dtype_name == "string":
                        continue
                    inner_table = self.catalog.table(scan.table)
                    if col.column not in inner_table:
                        continue
                    if inner_table.column(col.column).dtype.is_string:
                        continue
                    hash_nodes[id(scan)] = col.column
                if not hash_nodes:
                    continue
                join_nodes = join_co_partitions(driving, outer_col)
                placements: dict = {}
                add_placement(placements, driving, "hash", outer_col)
                for scan in body_scans:
                    if scan is driving:
                        continue
                    key = join_nodes.get(id(scan))
                    if key is None:
                        add_placement(placements, scan, "full")
                    else:
                        add_placement(placements, scan, "hash", key)
                for scan in spec_scans:
                    key = hash_nodes.get(id(scan))
                    if key is None:
                        add_placement(placements, scan, "full")
                    else:
                        add_placement(placements, scan, "hash", key)
                loop = sum(
                    _kernel_ns(
                        spec,
                        self.catalog.table(s.table).num_rows
                        / (shards if id(s) in hash_nodes else 1),
                    )
                    for s in spec_scans
                )
                cost = placements_cost(placements) + (
                    iterations(driving) / shards
                ) * loop
                if best is None or cost < best[0]:
                    best = (cost, driving, qual, {**hash_nodes, **join_nodes})

        decision = {
            "broadcast_ns": broadcast_ns,
            "shuffle_ns": best[0] if best else None,
            "shuffle_qual": best[2] if best else None,
            "interconnect": self.interconnect.name,
            "shards": self.shards,
        }
        if best is not None and best[0] < broadcast_ns:
            decision["chosen"] = "shuffle"
            decision["driving"] = (
                f"{best[1].table} AS {best[1].binding} "
                f"[hash({best[2].partition('.')[2]}) % {self.shards}]"
            )
            decision["_driving_scan"] = best[1]
            decision["_hash_nodes"] = best[3]
        else:
            decision["chosen"] = "broadcast"
            decision["driving"] = (
                f"{bcast_driving.table} AS {bcast_driving.binding} "
                f"[round_robin % {self.shards}]"
            )
            decision["reason"] = (
                "no hashable correlation"
                if best is None
                else "replication cheaper than repartitioning"
            )
            decision["_driving_scan"] = bcast_driving
            decision["_hash_nodes"] = {}
        return decision

    def _apply_placement(
        self,
        body: Plan,
        program: DriveProgram,
        spec_scans: list[Scan],
        driving: Scan,
        strategy: str,
        hash_nodes: dict[int, str],
        decision: dict,
    ) -> tuple[list[ExchangeStep], list[tuple[str, str, tuple[str, ...]]]]:
        """Rewrite scan nodes to form-qualified names, register the form
        tables in every shard catalog, and emit the exchange steps."""
        exchanges: list[ExchangeStep] = []
        hash_exchanges: dict[tuple[str, str], set] = {}
        if strategy == "shuffle":
            outer_col = decision["shuffle_qual"].partition(".")[2]
            form = self._ensure_form(driving.table, key=outer_col)
            cols = self._scan_columns(driving)
            driving.table = form
            hash_exchanges.setdefault(
                (form.split("##")[0], outer_col), set()
            ).update(cols)
            co_scans = [
                n for n in body.walk()
                if isinstance(n, Scan) and n is not driving
            ]
            for scan in spec_scans + co_scans:
                key = hash_nodes.get(id(scan))
                if key is None:
                    continue
                base_name = scan.table
                form = self._ensure_form(base_name, key=key)
                hash_exchanges.setdefault((base_name, key), set()).update(
                    self._scan_columns(scan)
                )
                scan.table = form
        else:
            form = self._ensure_form(driving.table)
            cols = self._scan_columns(driving)
            bytes_per_shard = sum(
                self._shards[0]
                .catalog.table(form)
                .column(c)
                .nbytes
                for c in cols
            )
            exchanges.append(
                ExchangeStep(
                    kind="broadcast",
                    table=driving.table,
                    form=form,
                    columns=cols,
                    host_bytes_per_shard=bytes_per_shard,
                    note="home slice (round-robin)",
                )
            )
            driving.table = form
        # every scan left on a plain name is a full replica per shard;
        # record the distinct ones so EXPLAIN shows the broadcast set
        seen: set[tuple[str, tuple[str, ...]]] = set()
        for scan in [
            n for n in body.walk() if isinstance(n, Scan)
        ] + spec_scans:
            if "##" in scan.table:
                continue
            cols = self._scan_columns(scan)
            dedup = (scan.table.lower(), cols)
            if dedup in seen:
                continue
            seen.add(dedup)
            exchanges.append(
                ExchangeStep(
                    kind="broadcast",
                    table=scan.table,
                    form=scan.table,
                    columns=cols,
                    host_bytes_per_shard=self._scan_bytes(scan),
                    note="full replica",
                )
            )
        hash_list: list[tuple[str, str, tuple[str, ...]]] = []
        for (table, key), cols in hash_exchanges.items():
            ordered = tuple(sorted(cols))
            hash_list.append((table, key, ordered))
            width = sum(
                self.catalog.table(table).column(c).dtype.width
                for c in ordered
            )
            matrix = self._pair_matrix(table, key)
            link_bytes = int(
                (matrix.sum() - np.trace(matrix)) * width
            )
            exchanges.append(
                ExchangeStep(
                    kind="repartition",
                    table=table,
                    form=f"{table}##hash:{key}",
                    columns=ordered,
                    key=key,
                    link_bytes=link_bytes,
                    cost_ns=repartition_cost_ns(
                        self.interconnect,
                        self.shards,
                        sum(
                            self.catalog.table(table).column(c).nbytes
                            for c in ordered
                        ),
                    ),
                )
            )
        return exchanges, hash_list

    # -- shard catalog forms --------------------------------------------

    def _ensure_form(self, table_name: str, key: str | None = None) -> str:
        """Register the rr / hash form of a base table in every shard
        catalog (content-addressed: idempotent per engine)."""
        base = self.catalog.table(table_name)
        if key is None:
            form_name = f"{base.name}##rr"
            spec = PartitionSpec("round_robin", self.shards)
        else:
            form_name = f"{base.name}##hash:{key}"
            spec = PartitionSpec("hash", self.shards, key=key)
        if form_name not in self._shards[0].catalog:
            slices = partition_table(base, spec)
            for state, piece in zip(self._shards, slices):
                state.catalog.register(piece.renamed(form_name))
            self._declare_partitioning(base.name, spec)
        return form_name

    def _declare_partitioning(self, table: str, spec: PartitionSpec) -> None:
        if self.catalog.partitioning(table) != spec:
            self.catalog.set_partitioning(table, spec)
            # our own metadata write must not look like external churn
            self._base_version = self.catalog.version

    def _pair_matrix(self, table_name: str, key: str) -> np.ndarray:
        """Rows moving from home shard s to hash shard d, as an N x N
        count matrix (home placement is round-robin)."""
        cached = self._pair_cache.get((table_name.lower(), key))
        if cached is not None:
            return cached
        table = self.catalog.table(table_name)
        buckets = hash_buckets(table.column(key).data, self.shards)
        home = np.arange(table.num_rows, dtype=np.int64) % self.shards
        matrix = np.zeros((self.shards, self.shards), dtype=np.int64)
        np.add.at(matrix, (home, buckets), 1)
        self._pair_cache[(table_name.lower(), key)] = matrix
        return matrix

    def _sync_catalog(self) -> None:
        """Invalidate shard forms when the base catalog changed."""
        if self.catalog.version == self._base_version:
            return
        self._pair_cache.clear()
        for state in self._shards:
            state.residency.release_all()
            state.catalog = Catalog(list(self.catalog))
            state.ctx.catalog = state.catalog
            state.index_cache.clear()
        self._base_version = self.catalog.version

    # -- execution ------------------------------------------------------

    def _run_coordinator(self, prepared, tracer) -> QueryResult:
        """Degenerate fallback: the whole solo program on shard 0."""
        state = self._shards[0]
        if tracer.enabled:
            tracer.bind_device(state.device)
        result = self.planner.run_prepared(
            prepared.solo, tracer=tracer, metrics=None, ctx=state.ctx
        )
        result.shards = self.shards
        result.makespan_ns = result.stats.total_ns
        result.plan_choice = (
            f"sharded-{self.shards}:coordinator:{prepared.choice}"
        )
        result.group_report = self._group_report(
            prepared, [result.stats.total_ns], result.makespan_ns
        )
        return result

    def _run_exchanges(self, prepared, tracer) -> None:
        """Materialise hash forms: home-slice loads + peer link traffic.

        Per column all-or-nothing: if the hash form is resident on every
        shard the exchange is skipped (and LRU-touched); otherwise the
        home slice is ensured (PCIe), the per-pair row counts cross the
        links, and the arrived slice is admitted without a host
        transfer (the links already paid for the movement).
        """
        for table, key, cols in prepared.hash_exchanges:
            form = f"{table}##hash:{key}"
            rr_name = f"{table}##rr"
            base = self.catalog.table(table)
            matrix = self._pair_matrix(table, key)
            missing: list[str] = []
            for col in cols:
                if all(
                    (form, col) in state.residency
                    for state in self._shards
                ):
                    for state in self._shards:
                        state.residency.admit(
                            (form, col),
                            state.catalog.table(form).column(col).nbytes,
                        )
                else:
                    missing.append(col)
            if not missing:
                continue
            for k, state in enumerate(self._shards):
                home = _rr_rows(base.num_rows, self.shards, k)
                for col in missing:
                    width = base.column(col).dtype.width
                    state.residency.ensure((rr_name, col), home * width)
            # one message per ordered pair: a row's columns travel
            # together, so link latency is paid per pair, not per column
            row_width = sum(base.column(c).dtype.width for c in missing)
            for src in range(self.shards):
                for dst in range(self.shards):
                    moved = int(matrix[src, dst])
                    if src != dst and moved:
                        self.group.transfer(src, dst, moved * row_width)
            for state in self._shards:
                for col in missing:
                    state.residency.admit(
                        (form, col),
                        state.catalog.table(form).column(col).nbytes,
                    )

    def _run_scatter_gather(self, prepared, tracer) -> QueryResult:
        program = prepared.program
        with tracer.span(
            "exchange", "phase", strategy=prepared.strategy
        ):
            self._run_exchanges(prepared, tracer)
        partials: list[Relation] = []
        runtimes: list[Runtime] = []
        body_ends: list[float] = []
        for k, state in enumerate(self._shards):
            if tracer.enabled:
                tracer.bind_device(state.device)
            with tracer.span(
                f"shard-{k}", "shard", device=k, strategy=prepared.strategy
            ):
                with tracer.span("preload", "phase"):
                    state.ctx.preload(
                        preload_columns(state.catalog, program)
                    )
                subprograms = [
                    SubqueryProgram(
                        state.ctx,
                        spec.descriptor,
                        spec.plan,
                        self.options.vector_batch,
                        fused=program.fusion is not None,
                    )
                    for spec in program.specs
                ]
                runtime = Runtime(state.ctx, program.nodes, subprograms)
                namespace: dict = {}
                exec(program.code, namespace)
                rel = namespace["drive"](runtime)
            partials.append(rel)
            runtimes.append(runtime)
            body_ends.append(state.device.stats.total_ns)
        # gather: partials converge on the coordinator's incoming links
        coordinator = self._shards[0]
        if tracer.enabled:
            tracer.bind_device(coordinator.device)
        gather_bytes = 0
        with tracer.span("gather", "exchange", shards=self.shards):
            for k in range(1, self.shards):
                nbytes = partials[k].nbytes
                if nbytes:
                    self.group.transfer(k, 0, nbytes)
                    gather_bytes += nbytes
            gathered = self._concat(coordinator.ctx, partials)
        before_fetch = coordinator.device.stats.total_ns
        with tracer.span("tail", "phase"):
            rel = gathered
            for node in reversed(prepared.tail):
                rel = self._run_tail_node(coordinator.ctx, node, rel)
        tail_end = coordinator.device.stats.total_ns
        final = ops.fetch_result(coordinator.ctx, rel)
        fetch_ns = coordinator.device.stats.total_ns - tail_end
        rows = final.decode_rows()
        makespan = max(body_ends) + (
            coordinator.device.stats.total_ns - body_ends[0]
        )
        prepared.exchanges = [
            step for step in prepared.exchanges if step.kind != "gather"
        ] + [
            ExchangeStep(
                kind="gather",
                table="(result)",
                form="(coordinator)",
                link_bytes=gather_bytes,
                cost_ns=gather_cost_ns(
                    self.interconnect, self.shards, gather_bytes
                ),
            )
        ]
        merged = self.group.merged_stats()
        cache_hits = sum(
            sp.cache.hits for rt in runtimes for sp in rt.subprograms
        )
        cache_misses = sum(
            sp.cache.misses for rt in runtimes for sp in rt.subprograms
        )
        subquery_cache: dict[int, tuple[int, int]] = {}
        for rt in runtimes:
            for sp in rt.subprograms:
                hits, misses = subquery_cache.get(
                    sp.descriptor.index, (0, 0)
                )
                subquery_cache[sp.descriptor.index] = (
                    hits + sp.cache.hits,
                    misses + sp.cache.misses,
                )
        result = QueryResult(
            rows=rows,
            column_names=list(final.columns),
            stats=merged,
            plan_choice=(
                f"sharded-{self.shards}:{prepared.strategy}:"
                f"{prepared.choice}"
            ),
            drive_source=program.source,
            node_times_ns=_sum_dicts(rt.node_times_ns for rt in runtimes),
            node_output_rows=_sum_dicts(
                rt.node_output_rows for rt in runtimes
            ),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            node_calls=_sum_dicts(rt.node_calls for rt in runtimes),
            node_launches=_sum_dicts(rt.node_launches for rt in runtimes),
            subquery_iterations=_sum_dicts(
                rt.subquery_iterations for rt in runtimes
            ),
            subquery_batches=_sum_dicts(
                rt.subquery_batches for rt in runtimes
            ),
            subquery_overhead_ns=_sum_dicts(
                rt.subquery_overhead_ns for rt in runtimes
            ),
            subquery_cache=subquery_cache,
            fetch_ns=fetch_ns,
            shards=self.shards,
            makespan_ns=makespan,
            group_report=self._group_report(prepared, body_ends, makespan),
        )
        return result

    def _concat(self, ctx, partials: list[Relation]) -> Relation:
        """Concatenate per-shard body outputs on the coordinator."""
        columns: dict[str, Column] = {}
        for name in partials[0].columns:
            parts = [rel.columns[name] for rel in partials]
            data = np.concatenate([p.data for p in parts])
            first = parts[0]
            columns[name] = Column(
                first.name, first.dtype, data, first.dictionary
            )
        gathered = Relation(
            columns, sum(rel.num_rows for rel in partials)
        )
        ctx.alloc_intermediate(gathered.nbytes)
        ctx.device.materialize(gathered.nbytes)
        ctx.operator_done()
        return gathered

    @staticmethod
    def _run_tail_node(ctx, node: Plan, rel: Relation) -> Relation:
        if isinstance(node, Aggregate):
            return ops.aggregate(ctx, rel, node.groups, node.aggs, node.having)
        if isinstance(node, Project):
            return ops.project(ctx, rel, node.exprs, node.names)
        if isinstance(node, Distinct):
            return ops.distinct(ctx, rel)
        if isinstance(node, Sort):
            return ops.sort(ctx, rel, node.keys, node.descending)
        if isinstance(node, Limit):
            return ops.limit(ctx, rel, node.count)
        raise TypeError(f"unexpected tail node {node!r}")

    def _group_report(
        self, prepared, body_ends: list[float], makespan: float
    ) -> dict:
        snapshots = self.group.snapshots()
        return {
            "shards": self.shards,
            "strategy": prepared.strategy,
            "interconnect": self.interconnect.name,
            "decision": {
                k: v
                for k, v in prepared.decision.items()
                if not k.startswith("_")
            },
            "exchanges": [asdict(step) for step in prepared.exchanges],
            "body_end_ns": list(body_ends),
            "makespan_ns": makespan,
            "devices": [
                {
                    "device": k,
                    "total_ns": snap.total_ns,
                    "kernel_time_ns": snap.kernel_time_ns,
                    "transfer_bytes": snap.h2d_bytes + snap.d2h_bytes,
                    "transfer_time_ns": snap.h2d_time_ns
                    + snap.d2h_time_ns,
                    "peer_bytes": snap.peer_bytes,
                    "peer_time_ns": snap.peer_time_ns,
                    "peak_device_bytes": snap.peak_device_bytes,
                    "kernel_launches": snap.kernel_launches,
                }
                for k, snap in enumerate(snapshots)
            ],
        }

    def _record_group_metrics(self, metrics, prepared, result) -> None:
        metrics.counter("queries.total").inc()
        metrics.counter(f"queries.path.{result.plan_choice}").inc()
        metrics.counter("shard.queries").inc()
        metrics.counter(f"shard.strategy.{prepared.strategy}").inc()
        if result.makespan_ns is not None:
            metrics.histogram("shard.makespan_ms").observe(
                result.makespan_ns / 1e6
            )
        report = result.group_report or {}
        link_bytes = sum(
            (report.get("pair_bytes") or {}).values()
        )
        metrics.counter("interconnect.bytes").inc(link_bytes)
        for entry in report.get("devices", []):
            k = entry["device"]
            metrics.counter(f"device.{k}.busy_ms").inc(
                entry["total_ns"] / 1e6
            )
            metrics.counter(f"device.{k}.kernel_launches").inc(
                entry["kernel_launches"]
            )
            metrics.counter(f"device.{k}.transfer_bytes").inc(
                entry["transfer_bytes"]
            )
            metrics.counter(f"device.{k}.peer_bytes").inc(
                entry["peer_bytes"]
            )
            metrics.gauge(f"device.{k}.peak_bytes.last").set(
                entry["peak_device_bytes"]
            )
        metrics.histogram("query.total_ms").observe(result.total_ms)
        metrics.record_query(
            sql=" ".join(prepared.sql.split())[:120],
            path=result.plan_choice,
            adaptive_switch=False,
            total_ms=result.total_ms,
            predicted_ms=None,
            predicted_error_pct=None,
            rows=result.num_rows,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            kernel_launches=result.stats.kernel_launches,
            transfer_fraction=result.stats.transfer_fraction,
            index_probes=result.index_probes,
            pool_restores=result.pool_restores,
            raw_mallocs=result.stats.malloc_calls,
        )


def _sum_dicts(dicts) -> dict:
    out: dict = {}
    for d in dicts:
        for key, value in d.items():
            out[key] = out.get(key, 0) + value
    return out
