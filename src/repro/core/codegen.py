"""Code generation of drive programs (paper Section III-B, Figures 4-6).

The generator traverses the query-plan tree-of-trees from the leaves to
the root and emits a Python *drive program* — one statement per
operator, calling the pre-implemented kernels through the runtime.  A
``SUBQ`` operand becomes an iterative loop:

* the correlated columns are pulled to the host once;
* invariant components are evaluated before the loop and referenced
  through ``rt.invariant`` inside it;
* per iteration, the generated statements evaluate the subquery's
  transient operators with the current parameter environment, store the
  scalar into the result vector, and roll the memory pools back;
* with vectorization enabled the loop advances in batches, fusing the
  kernels of many iterations into segmented launches;
* finally the operator containing the subquery is evaluated with the
  result vector as an ordinary input column (Figure 4's last line).

Nested subqueries at any depth generate nested loops (Figure 6).  The
produced source is kept on the program object — ``print(result
.drive_source)`` shows exactly what was generated for a query.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlanError
from ..plan.binder import SubqueryDescriptor
from ..plan.builder import PlanBuilder
from ..plan.invariants import InvariantInfo, mark_invariants
from ..plan.nodes import (
    Aggregate,
    CrossJoin,
    DerivedScan,
    Distinct,
    Filter,
    Join,
    LeftLookup,
    Limit,
    Plan,
    Project,
    Scan,
    SemiJoin,
    Sort,
    SubqueryColumn,
    SubqueryFilter,
)


@dataclass
class SubquerySpec:
    """What the runtime needs to instantiate one SubqueryProgram."""

    descriptor: SubqueryDescriptor
    plan: Plan


@dataclass
class DriveProgram:
    """A generated drive program ready for execution."""

    source: str
    nodes: list[Plan]
    specs: list[SubquerySpec]
    code: object = None
    # the fusion pass this program was generated under (core.fusion);
    # None means the one-launch-per-primitive pipeline
    fusion: object = None

    def compile(self) -> None:
        self.code = compile(self.source, "<drive-program>", "exec")


class CodeGenerator:
    """Generates the drive program for one (possibly nested) plan.

    When handed a :class:`~repro.core.fusion.FusionPlan`, fusible
    data-path nodes (scans with predicates, filters, subquery-predicate
    applications) are rewritten to the fused runtime entry points and
    each rewrite is recorded on the plan for EXPLAIN.
    """

    def __init__(self, builder: PlanBuilder, fusion=None):
        self.builder = builder
        self.fusion = fusion
        self._lines: list[str] = []
        self._indent = 1
        self._nodes: list[Plan] = []
        self._specs: list[SubquerySpec] = []
        self._var_counter = 0
        self._emitted_vars: dict[int, str] = {}

    # -- public ----------------------------------------------------------

    def generate(self, plan: Plan, fetch_result: bool = True) -> DriveProgram:
        self._emit("def drive(rt):")
        if self.fusion is not None:
            self._emit("# fusion: on — data-path chains charge one fused launch")
        result_var = self._emit_plan(plan, _Frame.outermost())
        if fetch_result:
            self._emit(f"return rt.fetch({result_var})")
        else:
            # sharded execution: per-shard partials stay device-resident;
            # the gather exchange moves them, and the coordinator pays
            # the single d2h fetch after the global tail
            self._emit(f"return {result_var}")
        program = DriveProgram(
            "\n".join(self._lines) + "\n", self._nodes, self._specs,
            fusion=self.fusion,
        )
        program.compile()
        return program

    def _fuse(self, node: Plan) -> bool:
        return self.fusion is not None and self.fusion.wants(node)

    # -- helpers -----------------------------------------------------------

    def _emit(self, line: str) -> None:
        if line.startswith("def "):
            self._lines.append(line)
        else:
            self._lines.append("    " * self._indent + line)

    def _register(self, node: Plan) -> int:
        self._nodes.append(node)
        return len(self._nodes) - 1

    def _var(self, prefix: str) -> str:
        self._var_counter += 1
        return f"{prefix}{self._var_counter}"

    # -- plan emission ---------------------------------------------------

    def _emit_plan(self, node: Plan, frame: "_Frame") -> str:
        """Memoising wrapper: a subtree shared by several parents (e.g.
        the magic-set push-down) is emitted — and thus executed — once."""
        if frame.sp_var is None:
            cached = self._emitted_vars.get(id(node))
            if cached is not None:
                return cached
            var = self._emit_plan_inner(node, frame)
            self._emitted_vars[id(node)] = var
            return var
        return self._emit_plan_inner(node, frame)

    def _emit_plan_inner(self, node: Plan, frame: "_Frame") -> str:
        """Emit statements for a plan node; returns its variable name.

        Outside any loop (``frame.sp_var is None``) the flat runtime
        entry points are used.  Inside a subquery iteration, invariant
        subtrees become ``rt.invariant(...)`` references and transient
        nodes use the ``t_*`` entry points with the loop's parameter
        environment.
        """
        in_loop = frame.sp_var is not None
        if in_loop and frame.info is not None and not frame.info.is_transient(node):
            node_id = self._register(node)
            var = self._var("t")
            self._emit(f"{var} = rt.invariant({frame.sp_var}, {node_id})")
            return var

        if isinstance(node, SubqueryFilter):
            child = self._emit_plan(node.child, frame)
            return self._emit_subquery_loop(node, child, frame)
        if isinstance(node, SubqueryColumn):
            child = self._emit_plan(node.child, frame)
            return self._emit_subquery_column(node, child, frame)

        node_id = self._register(node)

        if isinstance(node, Scan):
            var = self._var("t" if in_loop else "v")
            if self._fuse(node):
                self.fusion.record(
                    "scan", node_id,
                    f"{node.table} AS {node.binding}: "
                    f"{len(node.filters)} predicate(s) + compact",
                    transient=in_loop,
                )
                if in_loop:
                    self._emit(
                        f"{var} = rt.t_f_scan({frame.sp_var}, {node_id}, "
                        f"{frame.env_var})"
                    )
                else:
                    self._emit(f"{var} = rt.f_scan({node_id})")
            elif in_loop:
                self._emit(
                    f"{var} = rt.t_scan({frame.sp_var}, {node_id}, {frame.env_var})"
                )
            else:
                self._emit(f"{var} = rt.scan({node_id})")
            return var
        if isinstance(node, DerivedScan):
            inner = self._emit_plan(node.plan, frame)
            var = self._var("v")
            self._emit(f"{var} = rt.derived({node_id}, {inner})")
            return var
        if isinstance(node, CrossJoin):
            left = self._emit_plan(node.left, frame)
            right = self._emit_plan(node.right, frame)
            var = self._var("t" if in_loop else "v")
            self._emit(f"{var} = rt.cross_join({node_id}, {left}, {right})")
            return var
        if isinstance(node, Join):
            left = self._emit_plan(node.left, frame)
            right = self._emit_plan(node.right, frame)
            var = self._var("t" if in_loop else "v")
            if in_loop:
                self._emit(
                    f"{var} = rt.t_join({frame.sp_var}, {node_id}, "
                    f"{left}, {right}, {frame.env_var})"
                )
            else:
                self._emit(f"{var} = rt.join({node_id}, {left}, {right})")
            return var
        if isinstance(node, Filter):
            child = self._emit_plan(node.child, frame)
            var = self._var("t" if in_loop else "v")
            if self._fuse(node):
                self.fusion.record(
                    "filter", node_id, "predicate tree + compact",
                    transient=in_loop,
                )
                if in_loop:
                    self._emit(
                        f"{var} = rt.t_f_filter({frame.sp_var}, {node_id}, "
                        f"{child}, {frame.env_var})"
                    )
                else:
                    self._emit(f"{var} = rt.f_filter({node_id}, {child})")
            elif in_loop:
                self._emit(
                    f"{var} = rt.t_filter({frame.sp_var}, {node_id}, "
                    f"{child}, {frame.env_var})"
                )
            else:
                self._emit(f"{var} = rt.filter({node_id}, {child})")
            return var
        if isinstance(node, SemiJoin):
            child = self._emit_plan(node.child, frame)
            inner = self._emit_plan(node.inner, frame)
            var = self._var("v")
            self._emit(f"{var} = rt.semi_join({node_id}, {child}, {inner})")
            return var
        if isinstance(node, LeftLookup):
            child = self._emit_plan(node.child, frame)
            inner = self._emit_plan(node.inner, frame)
            var = self._var("v")
            self._emit(f"{var} = rt.left_lookup({node_id}, {child}, {inner})")
            return var
        if isinstance(node, Aggregate):
            child = self._emit_plan(node.child, frame)
            var = self._var("t" if in_loop else "v")
            if in_loop:
                self._emit(
                    f"{var} = rt.t_aggregate({frame.sp_var}, {node_id}, "
                    f"{child}, {frame.env_var})"
                )
            else:
                self._emit(f"{var} = rt.aggregate({node_id}, {child})")
            return var
        if isinstance(node, Project):
            child = self._emit_plan(node.child, frame)
            var = self._var("t" if in_loop else "v")
            if in_loop:
                self._emit(
                    f"{var} = rt.t_project({frame.sp_var}, {node_id}, "
                    f"{child}, {frame.env_var})"
                )
            else:
                self._emit(f"{var} = rt.project({node_id}, {child})")
            return var
        if isinstance(node, Distinct):
            child = self._emit_plan(node.child, frame)
            var = self._var("v")
            self._emit(f"{var} = rt.distinct({node_id}, {child})")
            return var
        if isinstance(node, Sort):
            child = self._emit_plan(node.child, frame)
            var = self._var("v")
            self._emit(f"{var} = rt.sort({node_id}, {child})")
            return var
        if isinstance(node, Limit):
            child = self._emit_plan(node.child, frame)
            var = self._var("v")
            self._emit(f"{var} = rt.limit({node_id}, {child})")
            return var
        raise PlanError(f"code generator cannot handle node {node!r}")

    # -- subquery loops (the heart of the paper) -----------------------------

    def _emit_subquery_loop(
        self, node: SubqueryFilter, outer_var: str, frame: "_Frame"
    ) -> str:
        """Emit one loop per SUBQ operand, then the final selection.

        Quantified predicates (``> ALL`` etc.) lower to predicates over
        several subquery operands; each gets its own result vector and
        the predicate is evaluated with all of them in place.
        """
        node_id = self._register(node)
        res_vars: list[str] = []
        for descriptor in node.descriptors:
            inner_plan = getattr(node, "inner_plan", None)
            if inner_plan is None or len(node.descriptors) > 1:
                inner_plan = self.builder.build(descriptor.block)
            res_vars.append(
                self._emit_one_subquery(descriptor, inner_plan, outer_var, frame)
            )
        var = self._var("v")
        vectors = "{" + ", ".join(
            f"{descriptor.index}: {res}"
            for descriptor, res in zip(node.descriptors, res_vars)
        ) + "}"
        if self._fuse(node):
            self.fusion.record(
                "subquery_predicate", node_id,
                f"3VL predicate over {len(node.descriptors)} result "
                "vector(s) + compact",
                transient=frame.sp_var is not None,
            )
            self._emit(
                f"{var} = rt.f_apply_subquery_predicate("
                f"{node_id}, {outer_var}, {vectors})"
            )
        else:
            self._emit(
                f"{var} = rt.apply_subquery_predicate("
                f"{node_id}, {outer_var}, {vectors})"
            )
        return var

    def _emit_subquery_column(
        self, node, outer_var: str, frame: "_Frame"
    ) -> str:
        """A scalar subquery in the SELECT list: the same loop, but the
        result vector becomes a column instead of a filter."""
        node_id = self._register(node)
        inner_plan = getattr(node, "inner_plan", None)
        if inner_plan is None:
            inner_plan = self.builder.build(node.descriptor.block)
        res = self._emit_one_subquery(node.descriptor, inner_plan, outer_var, frame)
        var = self._var("v")
        self._emit(
            f"{var} = rt.append_subquery_column({node_id}, {outer_var}, {res})"
        )
        return var

    def _emit_one_subquery(
        self,
        descriptor: SubqueryDescriptor,
        inner_plan: Plan,
        outer_var: str,
        frame: "_Frame",
    ) -> str:
        spec_index = len(self._specs)
        self._specs.append(SubquerySpec(descriptor, inner_plan))

        k = spec_index
        sp, corr, res, mark = f"sp{k}", f"corr{k}", f"res{k}", f"mark{k}"
        i, env = f"i{k}", f"env{k}"
        outer_env = frame.env_var if frame.sp_var is not None else None

        self._emit(
            f"# --- SUBQ #{k}: {descriptor.kind}, "
            f"params {list(descriptor.free_quals)}"
        )
        self._emit(f"{sp} = rt.subquery({k})")

        if not descriptor.is_correlated:
            # type-A/N: evaluate once, no loop (paper Section II-A)
            self._emit(f"{res} = rt.uncorrelated_vector({outer_var}, {sp})")
            return res

        self._emit(
            f"{corr} = rt.correlated_values({sp}, {outer_var}, {outer_env})"
        )
        self._emit(f"{res} = rt.new_result({sp}, {outer_var})")
        self._emit(f"rt.eval_invariants({sp}, {outer_var})")
        self._emit(f"{mark} = rt.mark_pools()")
        self._emit(f"if {sp}.vectorized:")
        self._indent += 1
        n_var, lo = f"n{k}", f"lo{k}"
        self._emit(f"{n_var} = rt.rows({outer_var})")
        self._emit(f"for {lo} in range(0, {n_var}, {sp}.batch_size):")
        self._indent += 1
        self._emit(
            f"rt.run_vector_batch({sp}, {corr}, {lo}, "
            f"min({lo} + {sp}.batch_size, {n_var}), {res})"
        )
        self._emit(f"rt.restore_pools({mark})")
        self._indent -= 2
        self._emit("else:")
        self._indent += 1
        self._emit(f"for {i} in range(rt.rows({outer_var})):")
        self._indent += 1
        self._emit(f"{env} = rt.param_env({sp}, {corr}, {i})")
        if outer_env is not None:
            self._emit(f"{env}.update({outer_env})")
        if descriptor.kind in ("scalar", "exists"):
            hit = f"hit{k}"
            self._emit(f"{hit} = rt.cache_get({sp}, {env})")
            self._emit(f"if {hit} is not None:")
            self._indent += 1
            self._emit(f"rt.store_cached({res}, {i}, {hit})")
            self._emit("continue")
            self._indent -= 1

        # inline the subquery's operator statements (Figure 4)
        inner_frame = _Frame(sp_var=sp, env_var=env, info=mark_invariants(inner_plan))
        root_var = self._emit_plan(inner_plan, inner_frame)

        if descriptor.kind == "scalar":
            self._emit(f"val{k}, ok{k} = rt.scalar_from({sp}, {root_var})")
            self._emit(f"rt.cache_put({sp}, {env}, val{k}, ok{k})")
            self._emit(f"rt.store_scalar({res}, {i}, val{k}, ok{k})")
        elif descriptor.kind == "exists":
            self._emit(f"flag{k} = rt.exists_from({root_var})")
            self._emit(f"rt.cache_put({sp}, {env}, float(flag{k}), True)")
            self._emit(f"rt.store_exists({res}, {i}, flag{k})")
        else:  # IN: variable-length results, two-level array
            self._emit(
                f"rt.store_values({res}, {i}, rt.values_from({root_var}))"
            )
        self._emit(f"rt.restore_pools({mark})")
        self._indent -= 2
        return res


@dataclass
class _Frame:
    """Emission context: which loop (if any) we are generating inside."""

    sp_var: str | None
    env_var: str | None
    info: InvariantInfo | None

    @staticmethod
    def outermost() -> "_Frame":
        return _Frame(None, None, None)


def generate_drive_program(
    builder: PlanBuilder,
    plan: Plan,
    fetch_result: bool = True,
    fusion=None,
) -> DriveProgram:
    """Generate and compile the drive program for a plan."""
    return CodeGenerator(builder, fusion=fusion).generate(
        plan, fetch_result=fetch_result
    )
