"""Sorted indexes over correlated columns (paper Section III-D).

The nested method re-scans the inner table once per outer tuple.  When
the correlation operator is ``=``, building a sorted index over the
inner correlated column turns each full scan into a binary search plus
a slice gather.  Building costs an ``O(N log N)`` device sort and
``O(2N)`` extra space (values + original positions), so the executor
weighs the build cost against the expected number of iterations before
committing (:func:`index_pays_off`).
"""

from __future__ import annotations

import math

import numpy as np

from ..gpu import kernels
from ..gpu.device import Device


class CorrelatedIndex:
    """A sorted copy of a column plus original row positions."""

    def __init__(self, sorted_values: np.ndarray, positions: np.ndarray):
        self.sorted_values = sorted_values
        self.positions = positions

    def __len__(self) -> int:
        return len(self.sorted_values)

    @property
    def nbytes(self) -> int:
        return self.sorted_values.nbytes + self.positions.nbytes

    @classmethod
    def build(cls, device: Device, values: np.ndarray) -> "CorrelatedIndex":
        """Sort the column on the device (charged as a sort kernel)."""
        order = kernels.sort_order(device, [values], [False])
        return cls(values[order], order)

    def lookup(self, device: Device, value) -> np.ndarray:
        """Row positions whose key equals ``value`` (one binary search)."""
        lo, hi = kernels.binary_search_ranges(
            device, self.sorted_values, np.asarray([value])
        )
        return self.positions[int(lo[0]) : int(hi[0])]

    def lookup_batch(
        self, device: Device, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Positions and segment ids for a whole batch of probe values.

        Returns ``(rows, segments)`` where ``rows`` are original row
        positions and ``segments[i]`` tells which probe value row ``i``
        matched — the representation the vectorized subquery path
        consumes directly.
        """
        lo, hi = kernels.binary_search_ranges(device, self.sorted_values, values)
        counts = hi - lo
        total = int(counts.sum())
        device.launch("index_gather", total)
        segments = np.repeat(np.arange(len(values)), counts)
        starts = np.repeat(lo, counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        rows = self.positions[starts + offsets]
        return rows, segments


def index_pays_off(
    table_rows: int, iterations: int, min_iterations: int
) -> bool:
    """Decide whether building the index beats repeated full scans.

    Cost comparison in units of element-touches: repeated scans cost
    ``iterations * N``; the indexed plan costs ``N log N`` (sort) plus
    ``iterations * log N`` (searches) plus the matched rows (paid in
    both plans).
    """
    if iterations < min_iterations or table_rows < 2:
        return False
    log_n = math.log2(table_rows)
    scan_cost = iterations * table_rows
    index_cost = table_rows * log_n + iterations * log_n
    return index_cost < scan_cost
