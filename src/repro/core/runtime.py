"""Runtime support for generated drive programs.

The code generator (:mod:`repro.core.codegen`) emits a Python drive
program — the analogue of the paper's generated CUDA/C driver — whose
statements call into the :class:`Runtime` below.  The runtime owns the
node registry, the per-subquery state (:class:`SubqueryProgram`), the
memory-pool marks, and the per-node timing used by the cost model.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ExecutionError
from ..engine import operators as ops
from ..engine.evaluator import run_plan
from ..engine.exprs import _MIRROR, _python_compare, evaluate
from ..engine.relation import Relation, computed_column
from ..gpu import kernels
from ..plan.expressions import (
    AggRef,
    BoolOp,
    ColRef,
    Compare,
    InCodes,
    NotOp,
    PlanExpr,
    SubqueryRef,
    referenced_params,
)
from ..plan.invariants import InvariantInfo, mark_invariants
from ..plan.nodes import Aggregate, Filter, Join, Plan, Project, Scan, SubqueryFilter
from . import vectorize
from .caching import SubqueryCache
from .indexing import CorrelatedIndex, index_pays_off
from .subquery import (
    ExistsResultVector,
    ScalarResultVector,
    TwoLevelResultVector,
)


class SubqueryProgram:
    """Compiled state for one SUBQ: plan, invariants, caches, indexes."""

    def __init__(self, ctx, descriptor, plan: Plan, batch_size: int,
                 fused: bool = False):
        self.ctx = ctx
        self.descriptor = descriptor
        self.plan = plan
        # data-path fusion (core.fusion): fuse the predicate chains and
        # compaction tails of this subquery's scans/filters, including
        # the vectorized batch path
        self.fused = fused
        self.info: InvariantInfo = mark_invariants(plan)
        self.param_quals: tuple[str, ...] = descriptor.free_quals
        self.cache = SubqueryCache(
            enabled=ctx.options.use_cache, namespace=descriptor.index
        )
        self.vectorized = (
            ctx.options.use_vectorization
            and descriptor.kind in ("scalar", "exists")
            and vectorize.can_vectorize(plan, self.info)
        )
        self.batch_size = batch_size
        self._invariant_memo: dict[int, Relation] = {}
        self._base_memo: dict[int, Relation] = {}
        self._hash_memo: dict[int, object] = {}
        self._index_memo: dict[int, CorrelatedIndex | None] = {}
        self._expected_iterations = 0

    # -- invariant extraction (paper Section III-D) -----------------------

    def eval_invariants(self, iterations: int) -> None:
        """Evaluate invariant components once, before the loop.

        With invariant extraction disabled the memos stay empty and
        every iteration recomputes the invariant subtrees (the ablation
        configuration).
        """
        self._expected_iterations = iterations
        if not self.ctx.options.use_invariant_extraction:
            return
        for node in self.plan.walk():
            if id(node) in self.info.invariant_roots:
                self.invariant_relation(node)

    def invariant_relation(self, node: Plan) -> Relation:
        key = id(node)
        if key in self._invariant_memo:
            return self._invariant_memo[key]
        rel = run_plan(self.ctx, node)
        if self.ctx.options.use_invariant_extraction:
            self._invariant_memo[key] = rel
        return rel

    def base_relation(self, node: Scan) -> Relation:
        """The scan's rows after its *non-correlated* filters.

        Evaluated once and reused by every iteration; the correlated
        predicate is applied per iteration (or per batch) on top.
        """
        key = id(node)
        if key in self._base_memo:
            return self._base_memo[key]
        plain = [f for f in node.filters if not referenced_params(f)]
        rel = ops.scan(
            self.ctx, node.table, node.binding, plain, None, node.columns,
            fused=self.fused,
        )
        if self.ctx.options.use_invariant_extraction:
            self._base_memo[key] = rel
        return rel

    def hoisted_hash(self, node: Join, invariant_rel: Relation, key: PlanExpr):
        """The invariant child's hash table, built once."""
        memo_key = id(node)
        if memo_key in self._hash_memo:
            return self._hash_memo[memo_key]
        table = ops.build_hash(self.ctx, invariant_rel, key)
        if self.ctx.options.use_invariant_extraction:
            self._hash_memo[memo_key] = table
        return table

    def scan_index(self, node: Scan, base: Relation, key_col: ColRef):
        """The sorted index over the scan's correlated column, if built.

        A session-shared ``ctx.index_cache`` is consulted first, keyed
        on the scan's structural fingerprint: an index built by an
        earlier query in the session is reused without re-paying the
        sort (for a per-query context the cache starts empty, so solo
        execution is unchanged).
        """
        memo_key = id(node)
        if memo_key not in self._index_memo:
            shared_key = self._shared_index_key(node, key_col)
            cached = (
                self.ctx.index_cache.get(shared_key)
                if self.ctx.options.use_index else None
            )
            if cached is not None:
                self._index_memo[memo_key] = cached
                return cached
            build = self.ctx.options.use_index and index_pays_off(
                base.num_rows,
                self._expected_iterations,
                self.ctx.options.index_min_iterations,
            )
            if build:
                values = base.column(key_col.qual).data
                index = CorrelatedIndex.build(self.ctx.device, values)
                self.ctx.alloc_scratch(index.nbytes)
                self._index_memo[memo_key] = index
                self.ctx.index_cache[shared_key] = index
            else:
                self._index_memo[memo_key] = None
        return self._index_memo[memo_key]

    @staticmethod
    def _shared_index_key(node: Scan, key_col: ColRef) -> tuple:
        """Value-based fingerprint of (scan base, indexed column).

        Two scans with the same table, binding, non-correlated filters
        and column set produce identical base relations, so their
        sorted indexes are interchangeable.  Plan expressions are
        frozen dataclasses, making ``repr`` a stable value key.
        """
        plain = tuple(sorted(
            repr(f) for f in node.filters if not referenced_params(f)
        ))
        return (
            node.table,
            node.binding,
            repr(key_col),
            plain,
            tuple(node.columns or ()),
        )


class Runtime:
    """The object a generated drive program receives as ``rt``."""

    def __init__(self, ctx, nodes: list[Plan], subqueries: list[SubqueryProgram]):
        self.ctx = ctx
        self.tracer = ctx.tracer
        self.nodes = nodes
        self.subprograms = subqueries
        self.node_times_ns: dict[int, float] = {}
        self.node_output_rows: dict[int, int] = {}
        self.node_calls: dict[int, int] = {}
        self.node_launches: dict[int, int] = {}
        # per-subquery loop accounting, keyed by descriptor.index
        self.subquery_iterations: dict[int, int] = {}
        self.subquery_batches: dict[int, int] = {}
        # modelled ns spent outside operators on behalf of a subquery:
        # invariant hoisting, parameter transfer, uncorrelated eval
        self.subquery_overhead_ns: dict[int, float] = {}
        self.fetch_ns = 0.0
        # mid-query adaptivity: set by the executor when the prepared
        # query carries an unnested fallback; the SUBQ loops report
        # their progress and the governor may raise AdaptiveSwitch at a
        # unit boundary (never mid-batch — modelled costs stay whole)
        self.governor = None

    # -- timing -------------------------------------------------------------

    def _timed(self, node_id: int, fn):
        stats = self.ctx.device.stats
        tracer = self.tracer
        span = None
        if tracer.enabled:
            node = self.nodes[node_id]
            span = tracer.begin(
                type(node).__name__, "operator", node_id=node_id
            )
        before_ns = stats.total_ns
        before_launches = stats.kernel_launches
        try:
            result = fn()
        finally:
            self.node_times_ns[node_id] = (
                self.node_times_ns.get(node_id, 0.0)
                + stats.total_ns - before_ns
            )
            self.node_calls[node_id] = self.node_calls.get(node_id, 0) + 1
            self.node_launches[node_id] = (
                self.node_launches.get(node_id, 0)
                + stats.kernel_launches - before_launches
            )
            if span is not None:
                tracer.end(span)
        if isinstance(result, Relation):
            self.node_output_rows[node_id] = (
                self.node_output_rows.get(node_id, 0) + result.num_rows
            )
            if span is not None:
                span.set_attrs(rows=result.num_rows)
        return result

    def _add_overhead(self, sp: SubqueryProgram, before_ns: float) -> None:
        key = sp.descriptor.index
        self.subquery_overhead_ns[key] = (
            self.subquery_overhead_ns.get(key, 0.0)
            + self.ctx.device.stats.total_ns - before_ns
        )

    # -- flat operators (outer plan) ---------------------------------------

    def scan(self, node_id: int) -> Relation:
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: ops.scan(
            self.ctx, node.table, node.binding, node.filters, None, node.columns
        ))

    def f_scan(self, node_id: int) -> Relation:
        """Fused twin of :meth:`scan`: the predicate chain and the
        compaction tail charge one fused launch (core.fusion)."""
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: ops.scan(
            self.ctx, node.table, node.binding, node.filters, None,
            node.columns, fused=True,
        ))

    def derived(self, node_id: int, inner: Relation) -> Relation:
        node = self.nodes[node_id]
        return inner.renamed_prefix(node.binding)

    def join(self, node_id: int, left: Relation, right: Relation) -> Relation:
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: ops.join(
            self.ctx, left, right, node.left_key, node.right_key,
            build_side=node.build_side,
        ))

    def cross_join(self, node_id: int, left: Relation, right: Relation) -> Relation:
        return self._timed(node_id, lambda: ops.cross_join(self.ctx, left, right))

    def filter(self, node_id: int, rel: Relation) -> Relation:
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: ops.filter_rel(
            self.ctx, rel, node.predicate
        ))

    def f_filter(self, node_id: int, rel: Relation) -> Relation:
        """Fused twin of :meth:`filter` (one launch per chain)."""
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: ops.filter_rel(
            self.ctx, rel, node.predicate, fused=True
        ))

    def semi_join(self, node_id: int, outer: Relation, inner: Relation) -> Relation:
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: ops.semi_join(
            self.ctx, outer, inner, node.outer_key, node.inner_key, node.negated
        ))

    def aggregate(self, node_id: int, rel: Relation) -> Relation:
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: ops.aggregate(
            self.ctx, rel, node.groups, node.aggs, node.having
        ))

    def project(self, node_id: int, rel: Relation) -> Relation:
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: ops.project(
            self.ctx, rel, node.exprs, node.names
        ))

    def distinct(self, node_id: int, rel: Relation) -> Relation:
        return self._timed(node_id, lambda: ops.distinct(self.ctx, rel))

    def sort(self, node_id: int, rel: Relation) -> Relation:
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: ops.sort(
            self.ctx, rel, node.keys, node.descending
        ))

    def limit(self, node_id: int, rel: Relation) -> Relation:
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: ops.limit(self.ctx, rel, node.count))

    def fetch(self, rel: Relation) -> Relation:
        before = self.ctx.device.stats.total_ns
        result = ops.fetch_result(self.ctx, rel)
        self.fetch_ns += self.ctx.device.stats.total_ns - before
        return result

    def rows(self, rel: Relation) -> int:
        return rel.num_rows

    # -- subquery machinery ---------------------------------------------------

    def subquery(self, index: int) -> SubqueryProgram:
        sp = self.subprograms[index]
        tracer = self.tracer
        if tracer.enabled:
            # a subquery span has no explicit end hook in the generated
            # program: the next sibling subquery (or the predicate /
            # column application) closes it
            tracer.close_siblings("subquery")
            descriptor = sp.descriptor
            tracer.begin(
                f"subquery #{descriptor.index}", "subquery",
                index=descriptor.index, kind=descriptor.kind,
                params=list(descriptor.free_quals),
                vectorized=sp.vectorized,
            )
        return sp

    def correlated_values(
        self,
        sp: SubqueryProgram,
        outer: Relation,
        outer_env: dict[str, float] | None = None,
    ) -> dict[str, np.ndarray]:
        """Pull the correlated columns to the host for loop control.

        The drive program runs on the CPU, so the parameter values
        cross PCIe once (charged), exactly as the paper's driver does.
        Quals not present in ``outer`` belong to an enclosing loop
        level and are broadcast from its environment (Figure 6).
        """
        before = self.ctx.device.stats.total_ns
        values = {}
        for qual in sp.param_quals:
            if qual in outer:
                column = outer.column(qual)
                self.ctx.device.transfer_d2h(column.nbytes)
                values[qual] = column.data
            elif outer_env is not None and qual in outer_env:
                values[qual] = np.full(outer.num_rows, outer_env[qual])
            else:
                raise ExecutionError(
                    f"correlated parameter {qual} unavailable in this scope"
                )
        self._add_overhead(sp, before)
        return values

    def uncorrelated_vector(self, outer: Relation, sp: SubqueryProgram):
        """Type-A/N subquery: evaluate once, broadcast into a vector."""
        before = self.ctx.device.stats.total_ns
        try:
            return self._uncorrelated_vector(outer, sp)
        finally:
            self._add_overhead(sp, before)

    def _uncorrelated_vector(self, outer: Relation, sp: SubqueryProgram):
        inner = run_plan(self.ctx, sp.plan)
        if sp.descriptor.kind == "exists":
            vector = ExistsResultVector(outer.num_rows)
            vector.flags[:] = inner.num_rows > 0
        elif sp.descriptor.kind == "in":
            vector = TwoLevelResultVector(outer.num_rows)
            values = next(iter(inner.columns.values())).data.astype(np.float64)
            for row in range(outer.num_rows):
                vector.store(row, values)
        else:
            if inner.num_rows != 1:
                raise ExecutionError(
                    f"scalar subquery produced {inner.num_rows} rows"
                )
            value = float(next(iter(inner.columns.values())).data[0])
            vector = ScalarResultVector(outer.num_rows)
            vector.values[:] = value
            vector.valid[:] = not np.isnan(value)
        return vector

    def left_lookup(self, node_id: int, child: Relation, inner: Relation) -> Relation:
        """Outer-join lookup (Dayal count unnesting)."""
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: ops.left_lookup(
            self.ctx, child, inner, node.outer_key, node.inner_key,
            node.value_column, node.output_name, node.default,
        ))

    def new_result(self, sp: SubqueryProgram, outer: Relation):
        size = outer.num_rows
        if sp.descriptor.kind == "exists":
            vector = ExistsResultVector(size)
        elif sp.descriptor.kind == "in":
            vector = TwoLevelResultVector(size)
        else:
            vector = ScalarResultVector(size)
        self.ctx.alloc_intermediate(vector.nbytes)
        if self.governor is not None:
            # the drive program allocates the result vector right
            # before entering the loop: pin the loop's clock start here
            # so extrapolation covers exactly the per-unit work
            self.governor.loop_started(sp, size)
        return vector

    def eval_invariants(self, sp: SubqueryProgram, outer: Relation) -> None:
        tracer = self.tracer
        span = None
        if tracer.enabled:
            span = tracer.begin(
                "invariant hoisting", "operator", subquery=sp.descriptor.index
            )
        before = self.ctx.device.stats.total_ns
        try:
            sp.eval_invariants(outer.num_rows)
        finally:
            self._add_overhead(sp, before)
            if span is not None:
                tracer.end(span)

    # pools -------------------------------------------------------------

    def mark_pools(self):
        if self.ctx.options.use_memory_pools:
            return self.ctx.pools.mark_all()
        return None

    def restore_pools(self, marks) -> None:
        if marks is not None:
            self.ctx.pools.restore_all(marks)
        else:
            # no pools: per-iteration raw deallocation, paying the
            # malloc/free overhead the pools exist to avoid
            self.ctx.raw_alloc.free_all()

    # per-iteration (loop) path -------------------------------------------

    def param_env(
        self, sp: SubqueryProgram, corr: dict[str, np.ndarray], i: int
    ) -> dict[str, float]:
        if self.governor is not None and i > 0:
            # i iterations have fully completed; check before starting
            # the next so a switch never splits an iteration
            self.governor.iteration_done(sp, i)
        key = sp.descriptor.index
        self.subquery_iterations[key] = self.subquery_iterations.get(key, 0) + 1
        tracer = self.tracer
        if tracer.enabled:
            # closed by the store_* that finishes this iteration
            tracer.end_iteration()
            tracer.begin(f"iteration {i}", "iteration", i=i, subquery=key)
        return {qual: corr[qual][i] for qual in sp.param_quals}

    def cache_get(self, sp: SubqueryProgram, env: dict[str, float]):
        key = tuple(env[q] for q in sp.param_quals)
        return sp.cache.get(key)

    def cache_put(self, sp, env, value: float, valid: bool) -> None:
        key = tuple(env[q] for q in sp.param_quals)
        sp.cache.put(key, value, valid)

    def t_scan(self, sp: SubqueryProgram, node_id: int, env) -> Relation:
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: self._t_scan(sp, node, env))

    def t_f_scan(self, sp: SubqueryProgram, node_id: int, env) -> Relation:
        """Fused twin of :meth:`t_scan` (core.fusion)."""
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: self._t_scan(
            sp, node, env, fused=True
        ))

    def _t_scan(
        self, sp: SubqueryProgram, node: Scan, env, fused: bool = False
    ) -> Relation:
        """Transient scan: base rows + the correlated predicate.

        Uses the sorted index (binary search + slice gather) when one
        was built; otherwise a full compare kernel over the base.  The
        fused path keeps the index fast path (it beats any fusion) and
        collapses the remaining correlated predicates plus the
        compaction tail into one fused launch.
        """
        base = sp.base_relation(node)
        correlated = [f for f in node.filters if referenced_params(f)]
        rel = base
        if fused:
            remaining = correlated
            if correlated:
                eq = vectorize._equality_correlation(correlated[0])
                if eq is not None:
                    key_col, qual = eq
                    index = sp.scan_index(node, base, key_col)
                    if index is not None:
                        self.ctx.index_probes += 1
                        rows = index.lookup(self.ctx.device, env[qual])
                        rel = rel.take_no_charge(rows)
                        ops._materialize(self.ctx, rel)
                        remaining = correlated[1:]
            if remaining:
                rel = ops.filter_rel_multi(
                    self.ctx, rel, remaining, env, fused=True
                )
            self.ctx.operator_done()
            return rel
        for position, predicate in enumerate(correlated):
            eq = vectorize._equality_correlation(predicate)
            if position == 0 and eq is not None:
                key_col, qual = eq
                index = sp.scan_index(node, base, key_col)
                if index is not None:
                    self.ctx.index_probes += 1
                    rows = index.lookup(self.ctx.device, env[qual])
                    rel = rel.take_no_charge(rows)
                    ops._materialize(self.ctx, rel)
                    continue
            rel = ops.filter_rel(self.ctx, rel, predicate, env)
        self.ctx.operator_done()
        return rel

    def t_join(
        self, sp: SubqueryProgram, node_id: int, left: Relation, right: Relation, env
    ) -> Relation:
        node = self.nodes[node_id]
        return self._timed(
            node_id, lambda: self._t_join(sp, node, left, right, env)
        )

    def _t_join(
        self, sp: SubqueryProgram, node: Join, left: Relation, right: Relation, env
    ) -> Relation:
        """Transient join; reuses the hoisted hash table when one side
        is invariant."""
        hoisted = id(node) in sp.info.hoisted_joins
        if hoisted:
            left_transient = sp.info.is_transient(node.left)
            if left_transient:
                invariant_rel, invariant_key = right, node.right_key
                probe_rel, probe_key = left, node.left_key
                side = "right"
            else:
                invariant_rel, invariant_key = left, node.left_key
                probe_rel, probe_key = right, node.right_key
                side = "left"
            table = sp.hoisted_hash(node, invariant_rel, invariant_key)
            if side == "right":
                return ops.join(
                    self.ctx, probe_rel, invariant_rel, probe_key,
                    invariant_key, env, build_side="right", prebuilt=table,
                )
            return ops.join(
                self.ctx, invariant_rel, probe_rel, invariant_key,
                probe_key, env, build_side="left", prebuilt=table,
            )
        return ops.join(
            self.ctx, left, right, node.left_key, node.right_key, env,
            build_side=node.build_side,
        )

    def t_filter(self, sp, node_id: int, rel: Relation, env) -> Relation:
        node = self.nodes[node_id]
        return self._timed(
            node_id, lambda: ops.filter_rel(self.ctx, rel, node.predicate, env)
        )

    def t_f_filter(self, sp, node_id: int, rel: Relation, env) -> Relation:
        """Fused twin of :meth:`t_filter` (core.fusion)."""
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: ops.filter_rel(
            self.ctx, rel, node.predicate, env, fused=True
        ))

    def t_aggregate(self, sp, node_id: int, rel: Relation, env) -> Relation:
        node = self.nodes[node_id]
        return self._timed(node_id, lambda: ops.aggregate(
            self.ctx, rel, node.groups, node.aggs, node.having, env
        ))

    def t_project(self, sp, node_id: int, rel: Relation, env) -> Relation:
        node = self.nodes[node_id]
        return self._timed(
            node_id, lambda: ops.project(self.ctx, rel, node.exprs, node.names)
        )

    def invariant(self, sp: SubqueryProgram, node_id: int) -> Relation:
        node = self.nodes[node_id]
        if id(node) in sp._invariant_memo:
            # hoisted: already evaluated (and charged) before the loop
            return sp.invariant_relation(node)
        # extraction disabled (ablation): re-evaluated per call, so the
        # cost belongs to this node
        return self._timed(node_id, lambda: sp.invariant_relation(node))

    def run_iteration(self, sp: SubqueryProgram, env: dict[str, float]):
        """One subquery iteration by direct plan walk.

        The generated drive program inlines these steps statically;
        this dynamic twin exists for the cost model's island probing
        (Section IV), which needs to execute a handful of iterations
        without generating code.
        """
        def walk(node: Plan) -> Relation:
            if not sp.info.is_transient(node):
                return sp.invariant_relation(node)
            if isinstance(node, Scan):
                return self._t_scan(sp, node, env, fused=sp.fused)
            if isinstance(node, Join):
                return self._t_join(sp, node, walk(node.left), walk(node.right), env)
            if isinstance(node, Filter):
                return ops.filter_rel(
                    self.ctx, walk(node.child), node.predicate, env,
                    fused=sp.fused,
                )
            if isinstance(node, Aggregate):
                return ops.aggregate(
                    self.ctx, walk(node.child), node.groups, node.aggs,
                    node.having, env,
                )
            if isinstance(node, Project):
                return ops.project(self.ctx, walk(node.child), node.exprs, node.names)
            raise ExecutionError(f"cannot probe node {node!r}")

        root = walk(sp.plan)
        if sp.descriptor.kind == "exists":
            return float(root.num_rows > 0), True
        if sp.descriptor.kind == "in":
            return self.values_from(root), True
        return self.scalar_from(sp, root)

    # result extraction ---------------------------------------------------

    def scalar_from(self, sp, rel: Relation) -> tuple[float, bool]:
        if rel.num_rows != 1:
            raise ExecutionError(
                f"scalar subquery produced {rel.num_rows} rows"
            )
        value = float(next(iter(rel.columns.values())).data[0])
        return value, not np.isnan(value)

    def exists_from(self, rel: Relation) -> bool:
        return rel.num_rows > 0

    def values_from(self, rel: Relation) -> np.ndarray:
        return next(iter(rel.columns.values())).data.astype(np.float64)

    def store_scalar(self, vector: ScalarResultVector, i: int, value, valid) -> None:
        vector.store(i, value, valid)
        self.tracer.end_iteration(cache_hit=False)

    def store_exists(self, vector: ExistsResultVector, i: int, flag: bool) -> None:
        vector.store(i, flag)
        self.tracer.end_iteration(cache_hit=False)

    def store_values(self, vector: TwoLevelResultVector, i, values) -> None:
        vector.store(i, values)
        self.tracer.end_iteration()

    def store_cached(self, vector, i: int, hit: tuple[float, bool]) -> None:
        value, valid = hit
        if isinstance(vector, ExistsResultVector):
            vector.store(i, bool(value) and valid)
        else:
            vector.store(i, value, valid)
        # in the loop path this ends the iteration; called from inside a
        # batch span, end_iteration hits the batch boundary and no-ops
        self.tracer.end_iteration(cache_hit=True)

    # vectorized path ----------------------------------------------------

    def run_vector_batch(
        self,
        sp: SubqueryProgram,
        corr: dict[str, np.ndarray],
        lo: int,
        hi: int,
        vector,
    ) -> None:
        """One fused batch: cache probe, dedupe, segmented evaluation."""
        key = sp.descriptor.index
        self.subquery_batches[key] = self.subquery_batches.get(key, 0) + 1
        self.subquery_iterations[key] = (
            self.subquery_iterations.get(key, 0) + (hi - lo)
        )
        tracer = self.tracer
        span = None
        if tracer.enabled:
            span = tracer.begin(
                f"batch [{lo}:{hi}]", "batch", subquery=key, rows=hi - lo
            )
        try:
            self._run_vector_batch(sp, corr, lo, hi, vector, span)
        finally:
            if span is not None:
                tracer.end(span)
        if self.governor is not None:
            # after the span closes: a switch raised here unwinds with
            # the batch fully accounted
            self.governor.batch_done(sp, hi)

    def _run_vector_batch(self, sp, corr, lo, hi, vector, span) -> None:
        rows = np.arange(lo, hi)
        keys = list(
            zip(*(corr[q][lo:hi].tolist() for q in sp.param_quals))
        )
        hit_rows, hit_values, miss_rows = sp.cache.probe_batch(keys)
        if span is not None:
            span.set_attrs(
                cache_hits=len(hit_rows), cache_misses=len(miss_rows)
            )
        for row, (value, valid) in zip(hit_rows, hit_values):
            self.store_cached(vector, lo + row, (value, valid))
        if not miss_rows:
            return
        # dedupe the misses: evaluate unique parameter tuples once
        miss_keys = [keys[r] for r in miss_rows]
        unique_keys, inverse = _unique_tuples(miss_keys)
        batch = {
            qual: np.asarray([key[k] for key in unique_keys])
            for k, qual in enumerate(sp.param_quals)
        }
        result = vectorize.run_batch(sp, batch)
        if sp.descriptor.kind == "exists":
            flags = result
            per_row = flags[inverse]
            vector.store_rows(rows[miss_rows], per_row)
            sp.cache.put_batch(
                unique_keys, flags.astype(np.float64), np.ones(len(flags), bool)
            )
        else:
            values, valid = result
            vector.store_rows(
                rows[miss_rows], values[inverse], valid[inverse]
            )
            sp.cache.put_batch(unique_keys, values, valid)

    def append_subquery_column(
        self, node_id: int, outer: Relation, vector
    ) -> Relation:
        """SELECT-list subquery: the result vector becomes a column.

        Invalid (NULL) scalars stay NaN, which decodes as NaN — the
        library's NULL representation for computed columns.
        """
        self.tracer.close_siblings("subquery")
        node = self.nodes[node_id]

        def run():
            if isinstance(vector, ScalarResultVector):
                data = vector.values
            elif isinstance(vector, ExistsResultVector):
                data = vector.flags.astype(np.float64)
            else:
                raise ExecutionError(
                    "only scalar subqueries may appear in the SELECT list"
                )
            out = Relation(
                {**outer.columns,
                 node.output_name: computed_column(node.output_name, data)},
                outer.num_rows,
            )
            ops._materialize(self.ctx, out)
            self.ctx.operator_done()
            return out

        return self._timed(node_id, run)

    # predicate application ---------------------------------------------------

    def apply_subquery_predicate(
        self, node_id: int, outer: Relation, vectors: dict[int, object]
    ) -> Relation:
        """Evaluate the outer predicate with the result vector(s) in
        place of the ``SUBQ`` operand(s) (paper Figure 4's final
        selection).  ``vectors`` maps subquery index -> result vector.
        """
        self.tracer.close_siblings("subquery")
        node = self.nodes[node_id]
        return self._timed(
            node_id, lambda: self._apply_predicate(node, outer, vectors)
        )

    def f_apply_subquery_predicate(
        self, node_id: int, outer: Relation, vectors: dict[int, object]
    ) -> Relation:
        """Fused twin of :meth:`apply_subquery_predicate`: the 3VL
        predicate tree over the result vectors and the compaction tail
        charge one fused launch (core.fusion)."""
        self.tracer.close_siblings("subquery")
        node = self.nodes[node_id]
        return self._timed(
            node_id,
            lambda: self._apply_predicate(node, outer, vectors, fused=True),
        )

    def _apply_predicate(
        self,
        node: SubqueryFilter,
        outer: Relation,
        vectors: dict[int, object],
        fused: bool = False,
    ) -> Relation:
        if fused:
            with kernels.fused(self.ctx.device, "fused_predicate"):
                return self._apply_predicate_inner(node, outer, vectors)
        return self._apply_predicate_inner(node, outer, vectors)

    def _apply_predicate_inner(
        self, node: SubqueryFilter, outer: Relation, vectors: dict[int, object]
    ) -> Relation:
        from ..plan.unnest import _replace_subquery_refs

        mapping: dict[int, AggRef] = {}
        columns = dict(outer.columns)
        known_cols: dict[str, np.ndarray] = {}
        by_index = {d.index: d for d in node.descriptors}
        for index, vector in vectors.items():
            marker = f"__subq{index}"
            if isinstance(vector, ScalarResultVector):
                # NaN marks NULL; the three-valued Compare below reads
                # knownness straight off the values, so no side channel.
                data = vector.values
            elif isinstance(vector, ExistsResultVector):
                data = vector.flags
            else:  # TwoLevelResultVector: reduce to 3VL membership first
                descriptor = by_index[index]
                vector.freeze()
                operand = evaluate(descriptor.in_operand, outer, self.ctx, None)
                if not isinstance(operand, np.ndarray):
                    operand = np.full(outer.num_rows, operand, dtype=np.float64)
                self.ctx.device.launch("in_membership", outer.num_rows, work=2.0)
                membership = vector.membership(operand)
                # x IN S: TRUE on a match, FALSE when S is empty, and
                # UNKNOWN when there is no match but x is NULL or S
                # contains a NULL (the NULL *might* have been x).
                empty = vector.lengths == 0
                operand_null = _nan_mask(operand, outer.num_rows)
                self.ctx.device.launch("null_scan", outer.num_rows)
                unknown = ~membership & ~empty & (
                    operand_null | vector.null_flags()
                )
                known = ~unknown
                data = (membership != descriptor.negated) & known
                known_cols[marker] = known
            columns[marker] = computed_column(marker, data)
            mapping[index] = AggRef(marker)

        augmented = Relation(columns, outer.num_rows)
        predicate = _replace_subquery_refs(node.predicate, mapping)
        truth, _ = _eval_three_valued(predicate, augmented, self.ctx, known_cols)
        indices = kernels.compact(self.ctx.device, truth)
        out = outer.take_no_charge(indices)
        ops._materialize(self.ctx, out)
        self.ctx.operator_done()
        return out


def _nan_mask(value, size: int) -> np.ndarray:
    """Per-row NULL (NaN) flags for an evaluated operand."""
    if isinstance(value, np.ndarray):
        if np.issubdtype(value.dtype, np.floating):
            return np.isnan(value)
        return np.zeros(size, dtype=bool)
    if isinstance(value, float) and math.isnan(value):
        return np.ones(size, dtype=bool)
    return np.zeros(size, dtype=bool)


def _eval_three_valued(
    expr: PlanExpr, rel: Relation, ctx, known_cols: dict[str, np.ndarray]
):
    """Kleene (K3) evaluation -> ``(truth, known)`` boolean arrays.

    Invariant: ``truth`` is False wherever ``known`` is False, so the
    truth array doubles directly as the WHERE filter mask (SQL keeps
    only TRUE rows; UNKNOWN is excluded just like FALSE).  NULL is NaN
    throughout, including marker columns for invalid scalar subqueries;
    ``known_cols`` carries knownness for boolean markers (IN membership)
    whose UNKNOWN cannot be encoded in the data itself.
    """
    device = ctx.device
    size = rel.num_rows
    if isinstance(expr, BoolOp):
        lt, lk = _eval_three_valued(expr.left, rel, ctx, known_cols)
        rt, rk = _eval_three_valued(expr.right, rel, ctx, known_cols)
        if expr.op == "and":
            truth = kernels.logical_and(device, lt, rt)
            known = (lk & rk) | (lk & ~lt) | (rk & ~rt)
        else:
            truth = kernels.logical_or(device, lt, rt)
            known = (lk & rk) | lt | rt
        return truth, known
    if isinstance(expr, NotOp):
        truth, known = _eval_three_valued(expr.operand, rel, ctx, known_cols)
        return (~truth) & known, known
    if isinstance(expr, Compare):
        left = evaluate(expr.left, rel, ctx, None)
        right = evaluate(expr.right, rel, ctx, None)
        left_is_array = isinstance(left, np.ndarray)
        right_is_array = isinstance(right, np.ndarray)
        if left_is_array and right_is_array:
            raw = kernels.compare_arrays(device, left, right, expr.op)
        elif left_is_array:
            raw = kernels.compare_scalar(device, left, expr.op, right)
        elif right_is_array:
            raw = kernels.compare_scalar(device, right, _MIRROR[expr.op], left)
        else:
            raw = np.full(size, _python_compare(expr.op, left, right))
        known = ~(_nan_mask(left, size) | _nan_mask(right, size))
        return raw & known, known
    if isinstance(expr, AggRef):
        data = rel.column(expr.name).data
        known = known_cols.get(expr.name)
        if known is None:
            known = ~_nan_mask(data, size)
        return data.astype(bool) & known, known
    if isinstance(expr, InCodes):
        # evaluate() already folds UNKNOWN membership to False; recover
        # knownness for the NULL-probe case so NOT does not flip it.
        truth = evaluate(expr, rel, ctx, None)
        if not isinstance(truth, np.ndarray):
            truth = np.full(size, bool(truth))
        known = np.ones(size, dtype=bool)
        if len(expr.codes):
            operand = evaluate(expr.operand, rel, ctx, None)
            known = ~_nan_mask(operand, size)
        return truth & known, known
    raw = evaluate(expr, rel, ctx, None)
    if not isinstance(raw, np.ndarray):
        raw = np.full(size, bool(raw))
    return raw.astype(bool), np.ones(size, dtype=bool)


def _unique_tuples(keys: list[tuple]):
    """Deduplicate parameter tuples -> (unique list, inverse indices)."""
    seen: dict[tuple, int] = {}
    unique: list[tuple] = []
    inverse = np.empty(len(keys), dtype=np.int64)
    for i, key in enumerate(keys):
        idx = seen.get(key)
        if idx is None:
            idx = len(unique)
            seen[key] = idx
            unique.append(key)
        inverse[i] = idx
    return unique, inverse
