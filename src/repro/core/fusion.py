"""Data-path kernel fusion over the generated drive programs.

The unfused pipeline launches one modelled kernel per primitive: a
selection with k predicates pays k compare launches, k-1 ``logical_and``
launches, a prefix sum and a scatter — plus an intermediate
materialisation per stage on multi-stage paths.  Fusion collapses each
producer→consumer chain (the predicate chain and its
prefix-sum→compact→gather compaction tail) into ONE fused launch of the
combined iteration work, the thesis of "Data Path Fusion in GPU for
Analytical Query Processing" (PAPERS.md).

Three pieces live here:

* :class:`FusionPlan` — the fusion pass's output, threaded through the
  :class:`~repro.core.codegen.CodeGenerator`.  While generating, every
  fusible site the generator rewrites to a fused runtime entry point
  (``rt.f_scan`` / ``rt.t_f_scan`` / ``rt.f_filter`` /
  ``rt.f_apply_subquery_predicate``) is recorded, so EXPLAIN can list
  exactly what was fused.  Because sites are recorded during emission,
  subquery inner plans (built lazily by the generator) are covered too.

* :class:`FusionDecision` — what execution ended up doing and why:
  forced by ``EngineOptions.fusion='on'``, measured by the tuner, or
  off.

* :class:`FusionTuner` — the DaCe-style on-the-fly tuner.  Fusion is
  *measured, not assumed*: per plan shape (structural fingerprint) the
  tuner benchmarks the fused candidate against the unfused baseline on
  a private device using tracer kernel-leaf timings and remembers the
  winner.  Entries are keyed by the cost model's
  ``CostCoefficients.version``; a recalibration bump makes every cached
  decision stale, so the next query re-tunes under the new model — a
  decision is never served across a version bump.

The cardinal invariant, pinned by the fusion-differential test layer:
fusion only changes *charging*, never results.  Every fused path runs
the same numpy computation and produces bit-identical rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FusionSite:
    """One producer→consumer chain the generator fused."""

    kind: str  # 'scan' | 'filter' | 'subquery_predicate'
    node_id: int
    description: str
    transient: bool = False  # inside a subquery iteration body

    def __str__(self) -> str:
        where = "loop" if self.transient else "flat"
        return f"[{self.node_id}] {self.kind} ({where}): {self.description}"


@dataclass
class FusionPlan:
    """The fusion pass for one generated program.

    Handed to the :class:`CodeGenerator`, which consults :meth:`wants`
    per plan node and records each site it actually rewrote.
    """

    sites: list[FusionSite] = field(default_factory=list)

    def wants(self, node) -> bool:
        """Is this plan node a fusible data-path chain?

        Scans with pushed-down predicates, standalone filters, and
        subquery-predicate applications all end in the compaction tail;
        joins, aggregations and sorts keep their specialised launches.
        """
        from ..plan.nodes import Filter, Scan, SubqueryFilter

        if isinstance(node, Scan):
            return bool(node.filters)
        return isinstance(node, (Filter, SubqueryFilter))

    def record(self, kind: str, node_id: int, description: str,
               transient: bool = False) -> None:
        self.sites.append(FusionSite(kind, node_id, description, transient))

    def describe(self) -> list[str]:
        return [str(site) for site in self.sites]


@dataclass(frozen=True)
class FusionDecision:
    """Why a prepared query runs fused (or not)."""

    source: str  # 'off' | 'forced' | 'tuned'
    fused: bool
    sites: int = 0
    fused_ns: float | None = None  # measured by the tuner, else None
    unfused_ns: float | None = None
    coefficients_version: int | None = None

    def describe(self) -> str:
        if self.source == "off":
            return "off"
        if self.source == "forced":
            return f"forced on ({self.sites} sites)"
        verdict = "fused wins" if self.fused else "unfused wins"
        return (
            f"tuned: {verdict} ({self.sites} sites, "
            f"fused {self.fused_ns / 1e6:.3f} ms vs "
            f"unfused {self.unfused_ns / 1e6:.3f} ms, "
            f"model v{self.coefficients_version})"
        )

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "fused": self.fused,
            "sites": self.sites,
            "fused_ns": self.fused_ns,
            "unfused_ns": self.unfused_ns,
            "coefficients_version": self.coefficients_version,
        }


FUSION_OFF = FusionDecision(source="off", fused=False)


def plan_fingerprint(plan) -> str:
    """A structural signature of a plan shape, for tuner cache keys.

    Two plans with the same operator tree, predicates and subquery
    descriptors share a fingerprint — and a measured fusion decision.
    """
    from ..plan.nodes import explain

    parts = [explain(plan)]
    for node in plan.walk():
        descriptors = getattr(node, "descriptors", ()) or ()
        if not descriptors:
            primary = getattr(node, "descriptor", None)
            if primary is not None:
                descriptors = (primary,)
        for descriptor in descriptors:
            parts.append(
                f"subq[{descriptor.index}]:{descriptor.kind}:"
                f"{sorted(descriptor.free_quals)}"
            )
    return "\n".join(parts)


class FusionTuner:
    """Measured fusion decisions, cached per (plan shape, model version).

    ``decide`` is handed two thunks that each run the candidate program
    on a private device and return the measured modelled nanoseconds
    (the executor sums the tracer's kernel-leaf and materialise spans).
    The winner is cached under the plan fingerprint together with the
    cost-model version it was measured under; a stale version is a
    cache miss, never a served decision.
    """

    def __init__(self):
        self._cache: dict[str, FusionDecision] = {}
        self.probes = 0
        self.hits = 0
        self.misses = 0

    def decide(
        self,
        fingerprint: str,
        version: int,
        sites: int,
        measure_unfused,
        measure_fused,
    ) -> FusionDecision:
        self.probes += 1
        cached = self._cache.get(fingerprint)
        if cached is not None and cached.coefficients_version == version:
            self.hits += 1
            return cached
        self.misses += 1
        unfused_ns = measure_unfused()
        fused_ns = measure_fused()
        decision = FusionDecision(
            source="tuned",
            fused=fused_ns < unfused_ns,
            sites=sites,
            fused_ns=fused_ns,
            unfused_ns=unfused_ns,
            coefficients_version=version,
        )
        self._cache[fingerprint] = decision
        return decision

    def invalidate(self) -> int:
        """Drop every cached decision; returns how many were evicted."""
        evicted = len(self._cache)
        self._cache.clear()
        return evicted

    def stats(self) -> dict:
        return {
            "entries": len(self._cache),
            "probes": self.probes,
            "hits": self.hits,
            "misses": self.misses,
        }
