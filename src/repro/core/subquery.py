"""Subquery result vectors (paper Section III-B).

For type-JA subqueries every evaluation returns a scalar, so results
form a fixed-width vector (:class:`ScalarResultVector`).  Type-J
results (``IN``) have variable length; the paper stores them as a
two-level array — per-iteration lengths plus a concatenated value
buffer (:class:`TwoLevelResultVector`).  EXISTS results degenerate to
a boolean vector.
"""

from __future__ import annotations

import numpy as np


class ScalarResultVector:
    """One scalar (plus validity) per outer iteration.

    ``valid`` distinguishes SQL NULL (empty aggregation input) from a
    real value, so ``!=`` comparisons against the vector honour
    three-valued logic.
    """

    def __init__(self, size: int):
        self.values = np.full(size, np.nan, dtype=np.float64)
        self.valid = np.zeros(size, dtype=bool)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def nbytes(self) -> int:
        return self.values.nbytes + self.valid.nbytes

    def store(self, row: int, value: float, valid: bool) -> None:
        self.values[row] = value
        self.valid[row] = valid

    def store_rows(self, rows, values, valid) -> None:
        self.values[rows] = values
        self.valid[rows] = valid


class ExistsResultVector:
    """One boolean per outer iteration."""

    def __init__(self, size: int):
        self.flags = np.zeros(size, dtype=bool)

    def __len__(self) -> int:
        return len(self.flags)

    @property
    def nbytes(self) -> int:
        return self.flags.nbytes

    def store(self, row: int, flag: bool) -> None:
        self.flags[row] = flag

    def store_rows(self, rows, flags) -> None:
        self.flags[rows] = flags


class TwoLevelResultVector:
    """Variable-length results: first level lengths, second level values.

    Built incrementally per iteration, then frozen into two flat
    arrays; membership tests (``IN``) run against the frozen form.
    """

    def __init__(self, size: int):
        self._chunks: dict[int, np.ndarray] = {}
        self.size = size
        self.lengths: np.ndarray | None = None
        self.offsets: np.ndarray | None = None
        self.values: np.ndarray | None = None

    def __len__(self) -> int:
        return self.size

    def store(self, row: int, values: np.ndarray) -> None:
        self._chunks[row] = np.asarray(values, dtype=np.float64)

    def freeze(self) -> None:
        """Assemble the two-level arrays."""
        lengths = np.zeros(self.size, dtype=np.int64)
        buffers = []
        for row in range(self.size):
            chunk = self._chunks.get(row)
            if chunk is not None and len(chunk):
                lengths[row] = len(chunk)
                buffers.append(chunk)
        self.lengths = lengths
        self.offsets = np.concatenate([[0], np.cumsum(lengths)])[:-1]
        self.values = (
            np.concatenate(buffers) if buffers else np.empty(0, dtype=np.float64)
        )

    @property
    def nbytes(self) -> int:
        if self.values is None:
            return sum(c.nbytes for c in self._chunks.values())
        return self.lengths.nbytes + self.values.nbytes

    def contains(self, row: int, value: float) -> bool:
        """Membership of ``value`` in iteration ``row``'s result set."""
        assert self.lengths is not None, "freeze() before membership tests"
        start = int(self.offsets[row])
        stop = start + int(self.lengths[row])
        return bool(np.any(self.values[start:stop] == value))

    def null_flags(self) -> np.ndarray:
        """Per-row flag: does iteration ``row``'s result set contain NULL?"""
        assert self.lengths is not None, "freeze() before membership tests"
        out = np.zeros(self.size, dtype=bool)
        for row in range(self.size):
            start = int(self.offsets[row])
            stop = start + int(self.lengths[row])
            if stop > start:
                out[row] = bool(np.any(np.isnan(self.values[start:stop])))
        return out

    def membership(self, probe: np.ndarray) -> np.ndarray:
        """Vectorised per-row membership: ``probe[i] in result[i]``."""
        assert self.lengths is not None, "freeze() before membership tests"
        out = np.zeros(self.size, dtype=bool)
        for row in range(self.size):
            start = int(self.offsets[row])
            stop = start + int(self.lengths[row])
            if stop > start:
                out[row] = bool(np.any(self.values[start:stop] == probe[row]))
        return out
