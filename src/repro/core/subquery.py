"""Subquery result vectors and the mid-query adaptivity governor.

Result vectors (paper Section III-B): for type-JA subqueries every
evaluation returns a scalar, so results form a fixed-width vector
(:class:`ScalarResultVector`).  Type-J results (``IN``) have variable
length; the paper stores them as a two-level array — per-iteration
lengths plus a concatenated value buffer
(:class:`TwoLevelResultVector`).  EXISTS results degenerate to a
boolean vector.

The :class:`AdaptiveGovernor` is the safety net behind the cost
model's nested-vs-unnested choice: the SUBQ drive loop reports
progress at every batch/iteration boundary, the governor extrapolates
the remaining loop cost from the elapsed modelled time (the same
islands idea Eq. (6) uses at prediction time, but over *real* work
units), and when the projection exceeds the unnested estimate by a
hysteresis factor it raises :class:`AdaptiveSwitch` — the executor
catches it, rewinds the pools, and reruns the query's unnested twin.
Rows stay bit-identical because nothing of the abandoned loop
survives; only the modelled clock keeps the sunk cost.
"""

from __future__ import annotations

import numpy as np


class ScalarResultVector:
    """One scalar (plus validity) per outer iteration.

    ``valid`` distinguishes SQL NULL (empty aggregation input) from a
    real value, so ``!=`` comparisons against the vector honour
    three-valued logic.
    """

    def __init__(self, size: int):
        self.values = np.full(size, np.nan, dtype=np.float64)
        self.valid = np.zeros(size, dtype=bool)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def nbytes(self) -> int:
        return self.values.nbytes + self.valid.nbytes

    def store(self, row: int, value: float, valid: bool) -> None:
        self.values[row] = value
        self.valid[row] = valid

    def store_rows(self, rows, values, valid) -> None:
        self.values[rows] = values
        self.valid[rows] = valid


class ExistsResultVector:
    """One boolean per outer iteration."""

    def __init__(self, size: int):
        self.flags = np.zeros(size, dtype=bool)

    def __len__(self) -> int:
        return len(self.flags)

    @property
    def nbytes(self) -> int:
        return self.flags.nbytes

    def store(self, row: int, flag: bool) -> None:
        self.flags[row] = flag

    def store_rows(self, rows, flags) -> None:
        self.flags[rows] = flags


class TwoLevelResultVector:
    """Variable-length results: first level lengths, second level values.

    Built incrementally per iteration, then frozen into two flat
    arrays; membership tests (``IN``) run against the frozen form.
    """

    def __init__(self, size: int):
        self._chunks: dict[int, np.ndarray] = {}
        self.size = size
        self.lengths: np.ndarray | None = None
        self.offsets: np.ndarray | None = None
        self.values: np.ndarray | None = None

    def __len__(self) -> int:
        return self.size

    def store(self, row: int, values: np.ndarray) -> None:
        self._chunks[row] = np.asarray(values, dtype=np.float64)

    def freeze(self) -> None:
        """Assemble the two-level arrays."""
        lengths = np.zeros(self.size, dtype=np.int64)
        buffers = []
        for row in range(self.size):
            chunk = self._chunks.get(row)
            if chunk is not None and len(chunk):
                lengths[row] = len(chunk)
                buffers.append(chunk)
        self.lengths = lengths
        self.offsets = np.concatenate([[0], np.cumsum(lengths)])[:-1]
        self.values = (
            np.concatenate(buffers) if buffers else np.empty(0, dtype=np.float64)
        )

    @property
    def nbytes(self) -> int:
        if self.values is None:
            return sum(c.nbytes for c in self._chunks.values())
        return self.lengths.nbytes + self.values.nbytes

    def contains(self, row: int, value: float) -> bool:
        """Membership of ``value`` in iteration ``row``'s result set."""
        assert self.lengths is not None, "freeze() before membership tests"
        start = int(self.offsets[row])
        stop = start + int(self.lengths[row])
        return bool(np.any(self.values[start:stop] == value))

    def null_flags(self) -> np.ndarray:
        """Per-row flag: does iteration ``row``'s result set contain NULL?"""
        assert self.lengths is not None, "freeze() before membership tests"
        out = np.zeros(self.size, dtype=bool)
        for row in range(self.size):
            start = int(self.offsets[row])
            stop = start + int(self.lengths[row])
            if stop > start:
                out[row] = bool(np.any(np.isnan(self.values[start:stop])))
        return out

    def membership(self, probe: np.ndarray) -> np.ndarray:
        """Vectorised per-row membership: ``probe[i] in result[i]``."""
        assert self.lengths is not None, "freeze() before membership tests"
        out = np.zeros(self.size, dtype=bool)
        for row in range(self.size):
            start = int(self.offsets[row])
            stop = start + int(self.lengths[row])
            if stop > start:
                out[row] = bool(np.any(self.values[start:stop] == probe[row]))
        return out


class AdaptiveSwitch(Exception):
    """Raised at a SUBQ loop boundary to abandon the nested execution.

    Carries the evidence for the trace/metrics record; the executor is
    the only intended catcher.
    """

    def __init__(self, subquery_index: int, done: int, total: int,
                 elapsed_ms: float, projected_remaining_ms: float,
                 budget_ms: float):
        self.subquery_index = subquery_index
        self.done = done
        self.total = total
        self.elapsed_ms = elapsed_ms
        self.projected_remaining_ms = projected_remaining_ms
        self.budget_ms = budget_ms
        super().__init__(
            f"subquery #{subquery_index}: {done}/{total} units in "
            f"{elapsed_ms:.3f} ms, projected {projected_remaining_ms:.3f} ms "
            f"remaining > budget {budget_ms:.3f} ms"
        )


class AdaptiveGovernor:
    """Watches SUBQ drive loops and aborts a losing nested execution.

    Created per run by the executor when a prepared query carries an
    unnested fallback (auto mode chose nested).  The runtime reports:

    * ``loop_started`` once per correlated loop (before the first
      batch/iteration), pinning the loop's start on the modelled clock;
    * ``batch_done`` / ``iteration_done`` at every unit boundary.

    After ``min_batches`` batches (or a fixed minimum of iterations on
    the unvectorized path) the governor extrapolates::

        projected_remaining = elapsed * (total - done) / done

    and raises :class:`AdaptiveSwitch` when that exceeds
    ``budget_ms * hysteresis``.  The sunk cost is deliberately excluded
    — past work is paid either way; only the *remaining* nested work
    competes with a fresh unnested run.  The hysteresis factor absorbs
    extrapolation noise (early batches carry warm-up effects and the
    estimate ignores cache-hit tapering), so marginal cases stay on the
    predicted path and only clear losses switch.
    """

    #: the unvectorized loop reports every iteration; demand at least
    #: this many before trusting the extrapolation
    MIN_ITERATIONS = 8

    def __init__(self, device, budget_ms: float, hysteresis: float = 1.5,
                 min_batches: int = 2):
        if budget_ms < 0:
            raise ValueError("budget must be non-negative")
        if hysteresis < 1.0:
            raise ValueError("hysteresis factor must be >= 1")
        self.device = device
        self.budget_ms = budget_ms
        self.hysteresis = hysteresis
        self.min_batches = max(1, min_batches)
        self._loops: dict[int, dict] = {}
        self.fired: AdaptiveSwitch | None = None

    def loop_started(self, sp, total: int) -> None:
        self._loops[id(sp)] = {
            "start_ns": self.device.stats.total_ns,
            "total": total,
            "units": 0,
        }

    def batch_done(self, sp, done: int) -> None:
        self._check(sp, done, self.min_batches)

    def iteration_done(self, sp, done: int) -> None:
        self._check(sp, done, max(self.MIN_ITERATIONS, self.min_batches))

    def _check(self, sp, done: int, min_units: int) -> None:
        if self.fired is not None:
            return
        state = self._loops.get(id(sp))
        if state is None:
            return
        state["units"] += 1
        total = state["total"]
        if state["units"] < min_units or done <= 0 or done >= total:
            return
        elapsed_ns = self.device.stats.total_ns - state["start_ns"]
        projected_ns = elapsed_ns * (total - done) / done
        if projected_ns <= self.budget_ms * 1e6 * self.hysteresis:
            return
        self.fired = AdaptiveSwitch(
            subquery_index=sp.descriptor.index,
            done=done,
            total=total,
            elapsed_ms=elapsed_ns / 1e6,
            projected_remaining_ms=projected_ns / 1e6,
            budget_ms=self.budget_ms,
        )
        raise self.fired
