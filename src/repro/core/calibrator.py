"""Online cost-model recalibration (closing the Section IV loop).

The analytic half of the cost model (Eqs. 1-5) is parameterised by the
device spec's coefficients — kernel launch constant ``C``, per-thread-
iteration time ``K``, materialization cost ``M`` per byte, and PCIe
bandwidth.  Those start as static guesses; once queries run, every
kernel launch, transfer and materialization the device charges is an
observation of the true coefficients.  The :class:`Calibrator` collects
those observations and re-fits the coefficients by least squares, and
:class:`CostCoefficients` packages one fitted set with a monotonically
increasing version (the cost-model twin of ``Catalog.version``), so a
session can swap coefficient sets atomically and invalidate everything
the old set decided (auto-mode plan-cache entries).

The coefficient object deliberately duck-types
:class:`~repro.gpu.spec.DeviceSpec` for the attributes the cost
functions read, so ``_kernel_ns`` and friends take either unchanged.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostCoefficients:
    """One versioned set of Eq. (1)-(5) coefficients.

    Attributes mirror the :class:`~repro.gpu.spec.DeviceSpec` fields the
    analytic cost functions read, plus provenance:

    * ``version`` — bumped on every recalibration; consumers that baked
      a decision on older coefficients (the plan cache's auto-mode
      entries) compare against it, exactly like ``Catalog.version``.
    * ``source`` — ``'spec'`` (taken from the device spec), ``'stale'``
      (deliberately skewed, for benchmarks and the calibration smoke)
      or ``'calibrated'`` (fitted from observed timings).
    """

    threads: int
    launch_overhead_ns: float
    iteration_ns: float
    materialize_ns_per_byte: float
    pcie_bytes_per_ns: float
    version: int = 0
    source: str = "spec"

    @staticmethod
    def from_spec(spec, version: int = 0, source: str = "spec") -> "CostCoefficients":
        """The coefficient set a device spec implies (exact for the
        simulated device, a starting guess for real hardware)."""
        return CostCoefficients(
            threads=spec.threads,
            launch_overhead_ns=spec.launch_overhead_ns,
            iteration_ns=spec.iteration_ns,
            materialize_ns_per_byte=spec.materialize_ns_per_byte,
            pcie_bytes_per_ns=spec.pcie_bytes_per_ns,
            version=version,
            source=source,
        )

    def scaled(self, factor: float) -> "CostCoefficients":
        """A deliberately mis-scaled copy: every predicted time is off
        by ``factor`` (bandwidth divides so transfers scale the same
        way).  Used to seed sessions with a stale model."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            launch_overhead_ns=self.launch_overhead_ns * factor,
            iteration_ns=self.iteration_ns * factor,
            materialize_ns_per_byte=self.materialize_ns_per_byte * factor,
            pcie_bytes_per_ns=self.pcie_bytes_per_ns / factor,
            source="stale",
        )

    def to_dict(self) -> dict:
        return {
            "threads": self.threads,
            "launch_overhead_ns": self.launch_overhead_ns,
            "iteration_ns": self.iteration_ns,
            "materialize_ns_per_byte": self.materialize_ns_per_byte,
            "pcie_bytes_per_ns": self.pcie_bytes_per_ns,
            "version": self.version,
            "source": self.source,
        }


class _Ring:
    """A capped sample buffer: appends wrap around once full, so the fit
    always sees the most recent window without unbounded growth."""

    __slots__ = ("capacity", "samples", "_next", "seen")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.samples: list[tuple[float, float]] = []
        self._next = 0
        self.seen = 0

    def add(self, sample: tuple[float, float]) -> None:
        self.seen += 1
        if len(self.samples) < self.capacity:
            self.samples.append(sample)
            return
        self.samples[self._next] = sample
        self._next = (self._next + 1) % self.capacity

    def __len__(self) -> int:
        return len(self.samples)


class Calibrator:
    """Regresses the Eq. (1)-(5) coefficients from observed timings.

    Attached to a device as its ``sampler``, the calibrator receives
    every charged kernel launch as ``(elements, work, time_ns)`` plus
    every transfer and materialization as ``(bytes, time_ns)``.  The
    kernel model is linear in the per-thread iteration count::

        time_ns = C + ceil(elements / Th) * work * K

    so ordinary least squares over ``x = ceil(elements/Th) * work``
    recovers ``C`` (intercept) and ``K`` (slope); bandwidth and the
    materialization rate are ratio fits.  On the simulated device the
    observations are exact, so a fit converges to the device spec in one
    pass — which is precisely what makes a deliberately stale model
    recoverable (see the calibration smoke).

    Thread safety: recording happens on the device's hot path, which the
    owning session already serializes, but the calibrator keeps its own
    lock so ``fit`` may run concurrently with another session's probes
    and the stats read cheaply from any thread.
    """

    def __init__(self, threads: int, capacity: int = 4096):
        if threads < 1:
            raise ValueError("thread count must be positive")
        self.threads = threads
        self._lock = threading.Lock()
        self._kernels = _Ring(capacity)
        self._transfers = _Ring(capacity)
        self._materializes = _Ring(capacity)

    # -- recording (device sampler protocol) ----------------------------

    def record_kernel(self, elements: int, work: float, time_ns: float) -> None:
        iterations = math.ceil(elements / self.threads) if elements > 0 else 0
        with self._lock:
            self._kernels.add((iterations * work, time_ns))

    def record_transfer(self, nbytes: int, time_ns: float) -> None:
        if nbytes <= 0:
            return
        with self._lock:
            self._transfers.add((float(nbytes), time_ns))

    def record_materialize(self, nbytes: int, time_ns: float) -> None:
        if nbytes <= 0:
            return
        with self._lock:
            self._materializes.add((float(nbytes), time_ns))

    # -- inspection -----------------------------------------------------

    def sample_counts(self) -> dict:
        with self._lock:
            return {
                "kernels": self._kernels.seen,
                "transfers": self._transfers.seen,
                "materializations": self._materializes.seen,
                "kernel_window": len(self._kernels),
            }

    def clear(self) -> None:
        with self._lock:
            capacity = self._kernels.capacity
            self._kernels = _Ring(capacity)
            self._transfers = _Ring(capacity)
            self._materializes = _Ring(capacity)

    # -- fitting --------------------------------------------------------

    def fit(
        self, base: CostCoefficients, min_samples: int = 32,
    ) -> CostCoefficients | None:
        """Fit fresh coefficients, or ``None`` if the evidence is thin.

        ``base`` supplies the fallback for terms without observations
        (e.g. a workload that never materialized) and the version the
        result increments.  The kernel fit is the gate: without enough
        launches, or without variance in the iteration counts (C and K
        are then unidentifiable), no new coefficient set is issued.
        """
        with self._lock:
            kernel_samples = list(self._kernels.samples)
            transfer_samples = list(self._transfers.samples)
            materialize_samples = list(self._materializes.samples)
        if len(kernel_samples) < min_samples:
            return None
        n = float(len(kernel_samples))
        sum_x = sum(x for x, _ in kernel_samples)
        sum_y = sum(y for _, y in kernel_samples)
        mean_x = sum_x / n
        mean_y = sum_y / n
        var_x = sum((x - mean_x) ** 2 for x, _ in kernel_samples)
        if var_x <= 1e-12:
            return None
        cov_xy = sum(
            (x - mean_x) * (y - mean_y) for x, y in kernel_samples
        )
        iteration_ns = max(1e-9, cov_xy / var_x)
        launch_overhead_ns = max(0.0, mean_y - iteration_ns * mean_x)

        pcie = base.pcie_bytes_per_ns
        total_bytes = sum(b for b, _ in transfer_samples)
        total_ns = sum(t for _, t in transfer_samples)
        if total_bytes > 0 and total_ns > 0:
            pcie = total_bytes / total_ns

        materialize = base.materialize_ns_per_byte
        mat_bytes = sum(b for b, _ in materialize_samples)
        mat_ns = sum(t for _, t in materialize_samples)
        if mat_bytes > 0:
            materialize = mat_ns / mat_bytes

        return CostCoefficients(
            threads=self.threads,
            launch_overhead_ns=launch_overhead_ns,
            iteration_ns=iteration_ns,
            materialize_ns_per_byte=materialize,
            pcie_bytes_per_ns=pcie,
            version=base.version + 1,
            source="calibrated",
        )
