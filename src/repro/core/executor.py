"""The NestGPU system: the paper's end-to-end query engine.

``NestGPU.execute(sql)`` parses, binds, plans, generates a drive
program, and runs it on the simulated device.  The execution mode is:

* ``'nested'`` — the paper's contribution: correlated subqueries run
  as generated iterative loops (with all five optimizations);
* ``'unnested'`` — Kim's rewrite where legal (raises
  :class:`~repro.errors.UnnestingError` otherwise), for comparison;
* ``'auto'`` — the cost model picks the cheaper of the two, falling
  back to nested when the query cannot be unnested (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine import EngineOptions, ExecutionContext
from ..errors import UnnestingError
from ..gpu import Device, DeviceSpec, ExecutionStats
from ..plan import Binder, PlanBuilder, try_exists_semijoin
from ..plan.nodes import Scan
from ..sql import parse
from ..storage import Catalog
from .codegen import DriveProgram, generate_drive_program
from .runtime import Runtime, SubqueryProgram


@dataclass
class QueryResult:
    """The outcome of one query execution."""

    rows: list[tuple]
    column_names: list[str]
    stats: ExecutionStats
    plan_choice: str  # 'nested' | 'unnested' | 'flat'
    drive_source: str
    node_times_ns: dict[int, float] = field(default_factory=dict)
    node_output_rows: dict[int, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    predicted_ms: float | None = None

    @property
    def total_ms(self) -> float:
        """Modelled device time in milliseconds (the reported metric)."""
        return self.stats.total_ms

    @property
    def num_rows(self) -> int:
        return len(self.rows)


@dataclass
class PreparedQuery:
    """A parsed, planned, code-generated query ready to run."""

    block: object
    plan: object
    program: DriveProgram
    choice: str


class NestGPU:
    """GPU-accelerated nested query processing (the paper's system)."""

    def __init__(
        self,
        catalog: Catalog,
        device: DeviceSpec | None = None,
        options: EngineOptions | None = None,
        mode: str = "auto",
        magic_sets: bool = False,
    ):
        self.catalog = catalog
        self.device_spec = device or DeviceSpec.v100()
        self.options = options or EngineOptions()
        if mode not in ("auto", "nested", "unnested"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.magic_sets = magic_sets

    # -- public API ---------------------------------------------------------

    def execute(self, sql: str, mode: str | None = None) -> QueryResult:
        """Run a query, returning rows plus modelled execution stats."""
        prepared = self.prepare(sql, mode)
        return self.run_prepared(prepared)

    def prepare(self, sql: str, mode: str | None = None) -> PreparedQuery:
        """Parse, plan, and generate the drive program without running."""
        chosen = mode or self.mode
        stmt = parse(sql)
        block = Binder(self.catalog).bind(stmt)
        has_correlated = any(
            descriptor.is_correlated
            for blk in block.all_blocks()
            for descriptor in blk.subqueries
        )
        if not has_correlated:
            return self._prepare_nested(sql, choice="flat")
        if chosen == "nested":
            return self._prepare_nested(sql)
        if chosen == "unnested":
            return self._prepare_unnested(sql)
        # auto: ask the cost model; nested is the only option when the
        # query cannot be unnested
        try:
            unnested = self._prepare_unnested(sql)
        except UnnestingError:
            return self._prepare_nested(sql)
        nested = self._prepare_nested(sql)
        from .costmodel import choose_execution_path

        choice = choose_execution_path(self, nested, unnested)
        return nested if choice == "nested" else unnested

    def run_prepared(self, prepared: PreparedQuery) -> QueryResult:
        device = Device(self.device_spec)
        ctx = ExecutionContext(self.catalog, device, self.options)
        self._preload(ctx, prepared.program)
        rel, runtime = self._execute_program(ctx, prepared.program)
        rows = rel.decode_rows()
        cache_hits = sum(sp.cache.hits for sp in runtime.subprograms)
        cache_misses = sum(sp.cache.misses for sp in runtime.subprograms)
        return QueryResult(
            rows=rows,
            column_names=list(rel.columns),
            stats=device.snapshot(),
            plan_choice=prepared.choice,
            drive_source=prepared.program.source,
            node_times_ns=dict(runtime.node_times_ns),
            node_output_rows=dict(runtime.node_output_rows),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )

    def drive_source(self, sql: str, mode: str | None = None) -> str:
        """The generated drive program for a query (for inspection)."""
        return self.prepare(sql, mode).program.source

    def explain(self, sql: str, mode: str | None = None) -> str:
        """A readable account of how a query would execute: the chosen
        path, the outer plan tree, and every subquery plan with its
        transient/invariant marking."""
        from ..plan.invariants import mark_invariants
        from ..plan.nodes import explain as explain_plan

        prepared = self.prepare(sql, mode)
        lines = [f"execution path: {prepared.choice}", "", "outer plan:"]
        lines.append(explain_plan(prepared.plan))
        for k, spec in enumerate(prepared.program.specs):
            descriptor = spec.descriptor
            lines.append("")
            lines.append(
                f"subquery #{k} ({descriptor.kind}"
                f"{', correlated on ' + ', '.join(descriptor.free_quals) if descriptor.free_quals else ''}):"
            )
            info = mark_invariants(spec.plan)
            depths = self._node_depth_map(spec.plan)
            for node in spec.plan.walk():
                tag = "transient" if info.is_transient(node) else "invariant"
                lines.append(
                    "  " * (depths[id(node)] + 1) + f"[{tag}] {node}"
                )
        return "\n".join(lines)

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _node_depth_map(plan) -> dict[int, int]:
        depths: dict[int, int] = {}

        def visit(node, depth):
            depths[id(node)] = depth
            for child in node.children():
                visit(child, depth + 1)

        visit(plan, 0)
        return depths

    def _prepare_nested(self, sql: str, choice: str = "nested") -> PreparedQuery:
        stmt = parse(sql)
        block = Binder(self.catalog).bind(stmt)
        builder = PlanBuilder(self.catalog)
        plan = builder.build(block)
        # the EXISTS -> semi-join fast path (paper: Q4) is part of the
        # nested engine's plan-level optimizations; re-prune because the
        # rewrite introduces fresh scans
        plan = try_exists_semijoin(plan, block)
        from ..plan.optimizer import prune_scan_columns

        prune_scan_columns(plan, self.catalog)
        program = generate_drive_program(builder, plan)
        return PreparedQuery(block, plan, program, choice)

    def _prepare_unnested(self, sql: str) -> PreparedQuery:
        stmt = parse(sql)
        block = Binder(self.catalog).bind(stmt)
        builder = PlanBuilder(self.catalog, unnest=True, magic_sets=self.magic_sets)
        plan = builder.build(block)
        program = generate_drive_program(builder, plan)
        return PreparedQuery(block, plan, program, "unnested")

    def _execute_program(self, ctx, program: DriveProgram):
        subprograms = [
            SubqueryProgram(ctx, spec.descriptor, spec.plan, self.options.vector_batch)
            for spec in program.specs
        ]
        runtime = Runtime(ctx, program.nodes, subprograms)
        namespace: dict = {}
        exec(program.code, namespace)
        rel = namespace["drive"](runtime)
        return rel, runtime

    def _preload(self, ctx, program: DriveProgram) -> None:
        """Preload base columns, inner-most subquery levels first and
        smaller tables first within a level (paper Section III-C)."""
        levels: list[list[tuple[str, str]]] = []

        def collect(plan, depth: int) -> None:
            while len(levels) <= depth:
                levels.append([])
            for node in plan.walk():
                if isinstance(node, Scan):
                    for column in node.columns or []:
                        levels[depth].append((node.table, column))

        collect_plans = [(spec.plan, 1) for spec in program.specs]
        outer_nodes = [n for n in program.nodes if isinstance(n, Scan)]
        levels.append([])
        for node in outer_nodes:
            for column in node.columns or []:
                levels[0].append((node.table, column))
        for plan, depth in collect_plans:
            collect(plan, depth)
        ordered: list[tuple[str, str]] = []
        seen = set()
        for level in reversed(levels):
            level_sorted = sorted(
                set(level), key=lambda tc: self.catalog.table(tc[0]).num_rows
            )
            for key in level_sorted:
                if key not in seen:
                    seen.add(key)
                    ordered.append(key)
        ctx.preload(ordered)
