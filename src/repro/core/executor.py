"""The NestGPU system: the paper's end-to-end query engine.

``NestGPU.execute(sql)`` parses, binds, plans, generates a drive
program, and runs it on the simulated device.  The execution mode is:

* ``'nested'`` — the paper's contribution: correlated subqueries run
  as generated iterative loops (with all five optimizations);
* ``'unnested'`` — Kim's rewrite where legal (raises
  :class:`~repro.errors.UnnestingError` otherwise), for comparison;
* ``'auto'`` — the cost model picks the cheaper of the two, falling
  back to nested when the query cannot be unnested (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine import EngineOptions, ExecutionContext
from ..errors import UnnestingError
from ..gpu import Device, DeviceSpec, ExecutionStats
from ..obs.tracer import NULL_TRACER
from ..plan import Binder, PlanBuilder, try_exists_semijoin
from ..plan.nodes import Scan
from ..sql import parse
from ..storage import Catalog
from .calibrator import CostCoefficients
from .codegen import DriveProgram, generate_drive_program
from .fusion import (
    FUSION_OFF,
    FusionDecision,
    FusionPlan,
    FusionTuner,
    plan_fingerprint,
)
from .runtime import Runtime, SubqueryProgram
from .subquery import AdaptiveGovernor, AdaptiveSwitch


def _sql_snippet(sql: str, limit: int = 120) -> str:
    """Collapse a statement to a single line short enough for span attrs."""
    flat = " ".join(sql.split())
    if len(flat) > limit:
        flat = flat[: limit - 1] + "…"
    return flat


@dataclass
class QueryResult:
    """The outcome of one query execution."""

    rows: list[tuple]
    column_names: list[str]
    stats: ExecutionStats
    plan_choice: str  # 'nested' | 'unnested' | 'flat'
    drive_source: str
    node_times_ns: dict[int, float] = field(default_factory=dict)
    node_output_rows: dict[int, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    predicted_ms: float | None = None
    # observability (filled by run_prepared; cheap to collect always)
    node_calls: dict[int, int] = field(default_factory=dict)
    node_launches: dict[int, int] = field(default_factory=dict)
    # vectorized-path per-node exclusive ns, keyed by id(plan node)
    # (only populated when tracing/analyzing; see obs.analyze)
    vector_node_ns: dict[int, float] = field(default_factory=dict)
    subquery_iterations: dict[int, int] = field(default_factory=dict)
    subquery_batches: dict[int, int] = field(default_factory=dict)
    subquery_overhead_ns: dict[int, float] = field(default_factory=dict)
    subquery_cache: dict[int, tuple[int, int]] = field(default_factory=dict)
    preload_ns: float = 0.0
    fetch_ns: float = 0.0
    index_probes: int = 0
    pool_restores: int = 0
    # set by the session layer: whether parse→bind→plan was skipped
    # because the plan cache already held this statement
    plan_cache_hit: bool = False
    # mid-query adaptivity: the nested execution was abandoned at a
    # loop boundary and the rows come from the unnested rerun;
    # abandoned_ms is the modelled time the nested attempt sank
    adaptive_switch: bool = False
    abandoned_ms: float = 0.0
    # sharded execution (core.sharded): device-group width, the wall
    # clock of the slowest shard plus the coordinator tail, and the
    # per-device / per-exchange report; solo runs keep the defaults
    shards: int = 1
    makespan_ns: float | None = None
    group_report: dict | None = None

    @property
    def total_ms(self) -> float:
        """Modelled device time in milliseconds (the reported metric)."""
        return self.stats.total_ms

    @property
    def num_rows(self) -> int:
        return len(self.rows)


@dataclass
class PreparedQuery:
    """A parsed, planned, code-generated query ready to run."""

    block: object
    plan: object
    program: DriveProgram
    choice: str
    sql: str = ""
    # cost-model prediction for the chosen path (auto mode only)
    predicted_ms: float | None = None
    # when auto chose nested over an unnestable alternative, the loser
    # rides along as the mid-query fallback with its analytic estimate
    # (the adaptive governor's abandon budget)
    fallback: "PreparedQuery | None" = None
    unnested_ms: float | None = None
    # data-path fusion (core.fusion): how this program's fusion state
    # was chosen — off, forced on, or measured by the FusionTuner
    fusion_decision: FusionDecision = FUSION_OFF


class NestGPU:
    """GPU-accelerated nested query processing (the paper's system)."""

    def __init__(
        self,
        catalog: Catalog,
        device: DeviceSpec | None = None,
        options: EngineOptions | None = None,
        mode: str = "auto",
        magic_sets: bool = False,
        tracer=None,
        metrics=None,
        coefficients: CostCoefficients | None = None,
    ):
        self.catalog = catalog
        self.device_spec = device or DeviceSpec.v100()
        self.options = options or EngineOptions()
        if mode not in ("auto", "nested", "unnested"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.magic_sets = magic_sets
        # observability defaults; both overridable per call
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = metrics
        # cost-model coefficients: start from the device spec (or an
        # injected — possibly stale — set); a session's Calibrator
        # refits these from observed timings (core.calibrator)
        self.coefficients = coefficients or CostCoefficients.from_spec(
            self.device_spec
        )
        # exact single-table selectivity counting (plan.selectivity);
        # shared by every PlanBuilder this engine constructs so the
        # per-(table, predicate) counts amortize across queries
        from ..plan.selectivity import ExactSelectivity

        self.selectivity = (
            ExactSelectivity(catalog) if self.options.exact_selectivity else None
        )
        # fusion autotuner (options.fusion == 'auto'): measured fused vs
        # unfused decisions cached per plan shape and coefficient version
        self.fusion_tuner = FusionTuner()

    def set_coefficients(self, coefficients: CostCoefficients) -> None:
        """Swap in a new coefficient set (atomic: one attribute store).

        In-flight ``prepare`` calls finish under whichever set they read
        first; subsequent calls see the new version.  The caller
        (``EngineSession.recalibrate``) is responsible for evicting
        cached auto-mode plans keyed to the old version.
        """
        self.coefficients = coefficients

    # -- public API ---------------------------------------------------------

    def execute(
        self, sql: str, mode: str | None = None, tracer=None, metrics=None,
    ) -> QueryResult:
        """Run a query, returning rows plus modelled execution stats."""
        tracer = self.tracer if tracer is None else tracer
        query_span = None
        if tracer.enabled:
            query_span = tracer.begin("query", "query", sql=_sql_snippet(sql))
        try:
            prepared = self.prepare(sql, mode, tracer=tracer)
            return self.run_prepared(prepared, tracer=tracer, metrics=metrics)
        finally:
            if query_span is not None:
                tracer.end(query_span)

    def prepare(
        self, sql: str, mode: str | None = None, tracer=None,
    ) -> PreparedQuery:
        """Parse, plan, and generate the drive program without running."""
        tracer = self.tracer if tracer is None else tracer
        chosen = mode or self.mode
        stmt = parse(sql)
        block = Binder(self.catalog).bind(stmt)
        has_correlated = any(
            descriptor.is_correlated
            for blk in block.all_blocks()
            for descriptor in blk.subqueries
        )
        if not has_correlated:
            return self._prepare_nested(sql, choice="flat", tracer=tracer)
        if chosen == "nested":
            return self._prepare_nested(sql, tracer=tracer)
        if chosen == "unnested":
            return self._prepare_unnested(sql, tracer=tracer)
        # auto: ask the cost model; nested is the only option when the
        # query cannot be unnested
        try:
            unnested = self._prepare_unnested(sql, tracer=tracer)
        except UnnestingError:
            return self._prepare_nested(sql, tracer=tracer)
        nested = self._prepare_nested(sql, tracer=tracer)
        from .costmodel import predict_paths

        with tracer.span("costmodel", "phase"):
            nested_ms, unnested_ms = predict_paths(self, nested, unnested)
        if nested_ms <= unnested_ms:
            nested.predicted_ms = nested_ms
            # the loser rides along: if the nested run turns out slower
            # than predicted, the adaptive governor abandons it and the
            # executor reruns this fallback (budget = its estimate)
            nested.fallback = unnested
            nested.unnested_ms = unnested_ms
            return nested
        unnested.predicted_ms = unnested_ms
        return unnested

    def run_prepared(
        self,
        prepared: PreparedQuery,
        tracer=None,
        metrics=None,
        observed: bool = True,
        ctx: ExecutionContext | None = None,
        span_attrs: dict | None = None,
    ) -> QueryResult:
        """Execute a prepared query on a fresh simulated device.

        ``observed=False`` forces the no-op tracer and skips metrics —
        used by the cost model's internal probe runs so they never
        pollute a trace or the per-query log.

        ``ctx`` injects a caller-owned execution context (a session's
        long-lived device, pools and column residency) instead of
        building a fresh one; the caller is then responsible for
        resetting the device clock before the call, for the
        between-queries cleanup (:meth:`ExecutionContext.end_query`),
        and — when several threads share the context's device — for
        serializing calls (the device is not internally synchronized;
        the session lock is the one the ThreadGuard recognises).
        All side-channel stats below are deltas against the state at
        entry, so a reused context reports per-query numbers.

        ``span_attrs`` adds attributes to the execute-phase span when
        tracing (the concurrent serving engine tags the worker and
        modelled stream ids of the run here).
        """
        if observed:
            tracer = self.tracer if tracer is None else tracer
            metrics = self.metrics if metrics is None else metrics
        else:
            tracer, metrics = NULL_TRACER, None
        if ctx is None:
            device = Device(self.device_spec, tracer=tracer)
            if tracer.enabled:
                tracer.bind_device(device)
            ctx = ExecutionContext(self.catalog, device, self.options)
        else:
            device = ctx.device
        if tracer.enabled:
            ctx.profile_node_ns = {}
        before_total_ns = device.stats.total_ns
        before_restores = ctx.pools.restores
        before_probes = ctx.index_probes
        # mid-query adaptivity: only a real (observed) run of an auto
        # nested plan that carries an unnested twin gets a governor —
        # cost-model probe runs and forced-mode runs never switch
        governor = None
        if (
            observed
            and self.options.adaptive
            and prepared.fallback is not None
            and prepared.unnested_ms is not None
        ):
            governor = AdaptiveGovernor(
                device,
                budget_ms=prepared.unnested_ms,
                hysteresis=self.options.adaptive_hysteresis,
                min_batches=self.options.adaptive_min_batches,
            )
        pool_marks = (
            ctx.pools.mark_all() if self.options.use_memory_pools else None
        )
        effective = prepared
        abandoned_ms = 0.0
        execute_span = None
        if tracer.enabled:
            execute_span = tracer.begin(
                "execute", "phase", path=prepared.choice, **(span_attrs or {}),
            )
        try:
            try:
                with tracer.span("preload", "phase"):
                    self._preload(ctx, prepared.program)
                preload_ns = device.stats.total_ns - before_total_ns
                rel, runtime = self._execute_program(
                    ctx, prepared.program, governor=governor
                )
            except AdaptiveSwitch as switch:
                # the nested attempt lost; its modelled time stays on
                # the clock (sunk cost) and the unnested twin reruns
                # from a rewound allocation state
                effective = prepared.fallback
                abandoned_ms = (
                    device.stats.total_ns - before_total_ns
                ) / 1e6
                if execute_span is not None:
                    execute_span.set_attrs(
                        adaptive_switch=True,
                        abandoned_ms=abandoned_ms,
                        switch_reason=str(switch),
                    )
                    # closes the abandoned subquery/batch spans left
                    # dangling by the exception unwind
                    tracer.end(execute_span)
                    execute_span = tracer.begin(
                        "execute", "phase", path="unnested",
                        adaptive_rerun=True, **(span_attrs or {}),
                    )
                if pool_marks is not None:
                    ctx.pools.restore_all(pool_marks)
                else:
                    ctx.raw_alloc.free_all()
                with tracer.span("preload", "phase"):
                    self._preload(ctx, effective.program)
                rel, runtime = self._execute_program(ctx, effective.program)
        finally:
            if execute_span is not None:
                tracer.end(execute_span)
        rows = rel.decode_rows()
        cache_hits = sum(sp.cache.hits for sp in runtime.subprograms)
        cache_misses = sum(sp.cache.misses for sp in runtime.subprograms)
        result = QueryResult(
            rows=rows,
            column_names=list(rel.columns),
            stats=device.snapshot(),
            plan_choice=effective.choice,
            drive_source=effective.program.source,
            node_times_ns=dict(runtime.node_times_ns),
            node_output_rows=dict(runtime.node_output_rows),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            predicted_ms=prepared.predicted_ms,
            node_calls=dict(runtime.node_calls),
            node_launches=dict(runtime.node_launches),
            vector_node_ns=dict(ctx.profile_node_ns or {}),
            subquery_iterations=dict(runtime.subquery_iterations),
            subquery_batches=dict(runtime.subquery_batches),
            subquery_overhead_ns=dict(runtime.subquery_overhead_ns),
            subquery_cache={
                sp.descriptor.index: (sp.cache.hits, sp.cache.misses)
                for sp in runtime.subprograms
            },
            preload_ns=preload_ns,
            fetch_ns=runtime.fetch_ns,
            index_probes=ctx.index_probes - before_probes,
            pool_restores=ctx.pools.restores - before_restores,
            adaptive_switch=effective is not prepared,
            abandoned_ms=abandoned_ms,
        )
        if metrics is not None:
            self._record_metrics(metrics, prepared, result)
        return result

    def drive_source(self, sql: str, mode: str | None = None) -> str:
        """The generated drive program for a query (for inspection)."""
        return self.prepare(sql, mode).program.source

    def explain(
        self, sql: str, mode: str | None = None, analyze: bool = False,
    ) -> str:
        """A readable account of how a query would execute: the chosen
        path, the outer plan tree, and every subquery plan with its
        transient/invariant marking.

        ``analyze=True`` *runs* the query and annotates the trees with
        measured per-operator modelled time, output rows, kernel
        launches and per-subquery loop statistics (EXPLAIN ANALYZE).
        """
        if analyze:
            from ..obs.analyze import explain_analyze

            tracer = self.tracer if self.tracer.enabled else None
            return explain_analyze(self, sql, mode, tracer=tracer).render()
        from ..plan.invariants import mark_invariants
        from ..plan.nodes import explain as explain_plan

        prepared = self.prepare(sql, mode)
        lines = [f"execution path: {prepared.choice}"]
        decision = prepared.fusion_decision
        if decision.source != "off":
            lines.append(f"fusion: {decision.describe()}")
            if prepared.program.fusion is not None:
                for site in prepared.program.fusion.describe():
                    lines.append(f"  fused {site}")
        lines += ["", "outer plan:"]
        lines.append(explain_plan(prepared.plan))
        for k, spec in enumerate(prepared.program.specs):
            descriptor = spec.descriptor
            lines.append("")
            lines.append(
                f"subquery #{k} ({descriptor.kind}"
                f"{', correlated on ' + ', '.join(descriptor.free_quals) if descriptor.free_quals else ''}):"
            )
            info = mark_invariants(spec.plan)
            depths = self._node_depth_map(spec.plan)
            for node in spec.plan.walk():
                tag = "transient" if info.is_transient(node) else "invariant"
                lines.append(
                    "  " * (depths[id(node)] + 1) + f"[{tag}] {node}"
                )
        return "\n".join(lines)

    # -- internals -----------------------------------------------------------

    def _record_metrics(self, metrics, prepared: PreparedQuery,
                        result: QueryResult) -> None:
        """Fold one run into a :class:`~repro.obs.metrics.MetricsRegistry`."""
        stats = result.stats
        metrics.counter("queries.total").inc()
        metrics.counter(f"queries.path.{result.plan_choice}").inc()
        if result.adaptive_switch:
            metrics.counter("costmodel.adaptive.switches").inc()
            metrics.histogram("costmodel.adaptive.abandoned_ms").observe(
                result.abandoned_ms
            )
        metrics.counter("subquery.cache.hits").inc(result.cache_hits)
        metrics.counter("subquery.cache.misses").inc(result.cache_misses)
        probes = result.cache_hits + result.cache_misses
        if probes:
            metrics.gauge("subquery.cache.hit_ratio.last").set(
                result.cache_hits / probes
            )
        metrics.counter("subquery.iterations").inc(
            sum(result.subquery_iterations.values())
        )
        metrics.counter("subquery.batches").inc(
            sum(result.subquery_batches.values())
        )
        decision = prepared.fusion_decision
        if decision.source != "off":
            metrics.counter(f"codegen.fusion.decision.{decision.source}").inc()
            if decision.fused:
                metrics.counter("codegen.fusion.queries_fused").inc()
        if stats.fused_launches:
            metrics.counter("codegen.fusion.fused_launches").inc(
                stats.fused_launches
            )
            metrics.counter("codegen.fusion.fused_kernels").inc(
                stats.fused_kernels
            )
            metrics.counter("codegen.fusion.saved_launches").inc(
                stats.fused_kernels - stats.fused_launches
            )
        tuner = self.fusion_tuner.stats()
        if tuner["probes"]:
            metrics.gauge("codegen.fusion.tuner.entries").set(tuner["entries"])
            metrics.gauge("codegen.fusion.tuner.hits").set(tuner["hits"])
            metrics.gauge("codegen.fusion.tuner.misses").set(tuner["misses"])
        metrics.counter("kernel.launches").inc(stats.kernel_launches)
        for tag, count in stats.launches_by_tag.items():
            metrics.counter(f"kernel.launches.{tag}").inc(count)
        for tag, time_ns in stats.kernel_time_by_tag.items():
            metrics.counter(f"kernel.time_ms.{tag}").inc(time_ns / 1e6)
        metrics.counter("memory.pool_restores").inc(result.pool_restores)
        metrics.counter("memory.raw_mallocs").inc(stats.malloc_calls)
        metrics.gauge("memory.peak_device_bytes.last").set(
            stats.peak_device_bytes
        )
        metrics.counter("index.probes").inc(result.index_probes)
        metrics.histogram("query.total_ms").observe(result.total_ms)
        metrics.histogram("query.transfer_fraction").observe(
            stats.transfer_fraction
        )
        error_pct = None
        if result.predicted_ms is not None and result.total_ms > 0:
            error_pct = (
                (result.predicted_ms - result.total_ms) / result.total_ms * 100.0
            )
            metrics.histogram("costmodel.abs_error_pct").observe(abs(error_pct))
        metrics.record_query(
            sql=_sql_snippet(prepared.sql),
            path=result.plan_choice,
            adaptive_switch=result.adaptive_switch,
            total_ms=result.total_ms,
            predicted_ms=result.predicted_ms,
            predicted_error_pct=error_pct,
            rows=result.num_rows,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            kernel_launches=stats.kernel_launches,
            transfer_fraction=stats.transfer_fraction,
            index_probes=result.index_probes,
            pool_restores=result.pool_restores,
            raw_mallocs=stats.malloc_calls,
        )

    @staticmethod
    def _node_depth_map(plan) -> dict[int, int]:
        depths: dict[int, int] = {}

        def visit(node, depth):
            depths[id(node)] = depth
            for child in node.children():
                visit(child, depth + 1)

        visit(plan, 0)
        return depths

    def _prepare_nested(
        self, sql: str, choice: str = "nested", tracer=NULL_TRACER,
    ) -> PreparedQuery:
        with tracer.span("parse", "phase", path=choice):
            stmt = parse(sql)
        with tracer.span("bind", "phase", path=choice):
            block = Binder(self.catalog).bind(stmt)
        with tracer.span("plan", "phase", path=choice):
            builder = PlanBuilder(
                self.catalog, exact_selectivity=self.selectivity
            )
            plan = builder.build(block)
            # the EXISTS -> semi-join fast path (paper: Q4) is part of the
            # nested engine's plan-level optimizations; re-prune because the
            # rewrite introduces fresh scans
            plan = try_exists_semijoin(plan, block)
            from ..plan.optimizer import prune_scan_columns

            prune_scan_columns(plan, self.catalog)
        with tracer.span("codegen", "phase", path=choice):
            program, decision = self._generate_with_fusion(builder, plan)
        return PreparedQuery(
            block, plan, program, choice, sql=sql, fusion_decision=decision
        )

    def _prepare_unnested(self, sql: str, tracer=NULL_TRACER) -> PreparedQuery:
        with tracer.span("parse", "phase", path="unnested"):
            stmt = parse(sql)
        with tracer.span("bind", "phase", path="unnested"):
            block = Binder(self.catalog).bind(stmt)
        with tracer.span("plan", "phase", path="unnested"):
            builder = PlanBuilder(
                self.catalog, unnest=True, magic_sets=self.magic_sets,
                exact_selectivity=self.selectivity,
            )
            plan = builder.build(block)
        with tracer.span("codegen", "phase", path="unnested"):
            program, decision = self._generate_with_fusion(builder, plan)
        return PreparedQuery(
            block, plan, program, "unnested", sql=sql, fusion_decision=decision
        )

    def _generate_with_fusion(self, builder, plan):
        """Generate the drive program under ``options.fusion``.

        ``'off'`` emits the historical one-launch-per-primitive program.
        ``'on'`` forces every fusible site through the fused entry
        points.  ``'auto'`` generates both variants and asks the
        :class:`FusionTuner`, which measures each candidate's modelled
        time on a private device the first time a plan shape is seen
        under the current coefficient version, then serves the cached
        winner.
        """
        mode = self.options.fusion
        if mode == "off":
            return generate_drive_program(builder, plan), FUSION_OFF
        fusion = FusionPlan()
        fused_program = generate_drive_program(builder, plan, fusion=fusion)
        sites = len(fusion.sites)
        if sites == 0:
            # nothing fusible in this program: keep the unfused emission
            # so drive sources stay byte-stable for snapshot tests
            return generate_drive_program(builder, plan), FUSION_OFF
        if mode == "on":
            return fused_program, FusionDecision(
                source="forced", fused=True, sites=sites
            )
        if mode != "auto":
            raise ValueError(f"unknown fusion mode {mode!r}")
        unfused_program = generate_drive_program(builder, plan)
        decision = self.fusion_tuner.decide(
            plan_fingerprint(plan),
            self.coefficients.version,
            sites,
            lambda: self._measure_program(unfused_program),
            lambda: self._measure_program(fused_program),
        )
        return (fused_program if decision.fused else unfused_program), decision

    def _measure_program(self, program: DriveProgram) -> float:
        """Modelled end-to-end ns of one candidate program on a private
        device (the tuner's benchmark harness; never observed)."""
        device = Device(self.device_spec)
        ctx = ExecutionContext(self.catalog, device, self.options)
        self._preload(ctx, program)
        self._execute_program(ctx, program)
        return device.stats.total_ns

    def _execute_program(self, ctx, program: DriveProgram, governor=None):
        fused = program.fusion is not None
        subprograms = [
            SubqueryProgram(
                ctx, spec.descriptor, spec.plan, self.options.vector_batch,
                fused=fused,
            )
            for spec in program.specs
        ]
        runtime = Runtime(ctx, program.nodes, subprograms)
        runtime.governor = governor
        namespace: dict = {}
        exec(program.code, namespace)
        rel = namespace["drive"](runtime)
        return rel, runtime

    def _preload(self, ctx, program: DriveProgram) -> None:
        """Preload base columns, inner-most subquery levels first and
        smaller tables first within a level (paper Section III-C)."""
        ctx.preload(preload_columns(self.catalog, program))


def preload_columns(catalog: Catalog, program: DriveProgram) -> list[tuple[str, str]]:
    """The ordered ``(table, column)`` preload set of a drive program.

    Shared by the executor's preload phase and the scheduler's
    admission control, which sums the same set's bytes to estimate a
    query's device working set before letting it run.
    """
    levels: list[list[tuple[str, str]]] = []

    def collect(plan, depth: int) -> None:
        while len(levels) <= depth:
            levels.append([])
        for node in plan.walk():
            if isinstance(node, Scan):
                for column in node.columns or []:
                    levels[depth].append((node.table, column))

    collect_plans = [(spec.plan, 1) for spec in program.specs]
    outer_nodes = [n for n in program.nodes if isinstance(n, Scan)]
    levels.append([])
    for node in outer_nodes:
        for column in node.columns or []:
            levels[0].append((node.table, column))
    for plan, depth in collect_plans:
        collect(plan, depth)
    ordered: list[tuple[str, str]] = []
    seen = set()
    for level in reversed(levels):
        level_sorted = sorted(
            set(level), key=lambda tc: catalog.table(tc[0]).num_rows
        )
        for key in level_sorted:
            if key not in seen:
                seen.add(key)
                ordered.append(key)
    return ordered
