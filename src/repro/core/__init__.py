"""NestGPU core: code generation, nested execution, cost model."""

from .caching import SubqueryCache
from .codegen import CodeGenerator, DriveProgram, generate_drive_program
from .costmodel import (
    NestedPrediction,
    aggregate_cost_ns,
    choose_execution_path,
    estimate_flat_plan_ns,
    join_cost_ns,
    predict_nested,
    selection_cost_ns,
    sort_cost_ns,
)
from .executor import NestGPU, PreparedQuery, QueryResult
from .fusion import (
    FUSION_OFF,
    FusionDecision,
    FusionPlan,
    FusionTuner,
    plan_fingerprint,
)
from .indexing import CorrelatedIndex, index_pays_off
from .runtime import Runtime, SubqueryProgram
from .sharded import ShardedEngine, ShardedPrepared
from .subquery import (
    ExistsResultVector,
    ScalarResultVector,
    TwoLevelResultVector,
)

__all__ = [
    "CodeGenerator",
    "CorrelatedIndex",
    "DriveProgram",
    "ExistsResultVector",
    "FUSION_OFF",
    "FusionDecision",
    "FusionPlan",
    "FusionTuner",
    "NestGPU",
    "NestedPrediction",
    "PreparedQuery",
    "QueryResult",
    "Runtime",
    "ScalarResultVector",
    "ShardedEngine",
    "ShardedPrepared",
    "SubqueryCache",
    "SubqueryProgram",
    "TwoLevelResultVector",
    "aggregate_cost_ns",
    "choose_execution_path",
    "estimate_flat_plan_ns",
    "generate_drive_program",
    "index_pays_off",
    "join_cost_ns",
    "plan_fingerprint",
    "predict_nested",
    "selection_cost_ns",
    "sort_cost_ns",
]
