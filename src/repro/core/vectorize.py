"""Vectorized subquery evaluation (paper Section III-D, "Vectorization").

A single subquery iteration often produces intermediate data far too
small to occupy the GPU.  NestGPU fuses the kernels of many iterations:
a whole *batch* of outer parameter tuples is evaluated in one pass by
carrying a segment id per row — the iteration a row belongs to — and
finishing with segmented reductions.  One fused launch replaces ``B``
tiny launches, which is exactly where the batched path wins in the
ablation bench.

The evaluator walks only the *transient* spine of the subquery plan;
invariant subtrees and hoisted hash tables come pre-computed from the
:class:`~repro.core.runtime.SubqueryProgram`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExecutionError
from ..gpu import kernels
from ..engine import operators as ops
from ..engine.exprs import evaluate
from ..engine.relation import Relation, computed_column
from ..plan.expressions import (
    ColRef,
    Compare,
    ParamRef,
    PlanExpr,
    referenced_params,
)
from ..plan.nodes import (
    Aggregate,
    Filter,
    Join,
    Plan,
    Project,
    Scan,
    SubqueryFilter,
)


@dataclass
class SegRelation:
    """A relation whose rows are partitioned across batch segments."""

    rel: Relation
    seg: np.ndarray
    num_segments: int

    @property
    def num_rows(self) -> int:
        return self.rel.num_rows


def can_vectorize(plan: Plan, info) -> bool:
    """Whether the batched path supports this subquery plan.

    Requirements: the transient region contains only scans, filters,
    joins, one group-less aggregate and projections; every correlated
    scan predicate is an equality against a single parameter.  Plans
    outside this shape run the per-iteration loop instead.
    """
    saw_aggregate = False
    for node in plan.walk():
        if not info.is_transient(node):
            continue
        if isinstance(node, SubqueryFilter):
            return False
        if isinstance(node, Aggregate):
            if node.groups or saw_aggregate:
                return False
            saw_aggregate = True
        elif isinstance(node, Scan):
            for predicate in node.filters:
                if not referenced_params(predicate):
                    continue
                if _equality_correlation(predicate) is None:
                    return False
        elif not isinstance(node, (Filter, Join, Project)):
            return False
    return True


def _equality_correlation(predicate: PlanExpr):
    """Match ``col = $param`` -> (ColRef, qual); None otherwise."""
    if not isinstance(predicate, Compare) or predicate.op != "=":
        return None
    left, right = predicate.left, predicate.right
    if isinstance(left, ColRef) and isinstance(right, ParamRef):
        return left, right.qual
    if isinstance(right, ColRef) and isinstance(left, ParamRef):
        return right, left.qual
    return None


def run_batch(sp, batch: dict[str, np.ndarray]):
    """Evaluate the subquery for a batch of parameter tuples.

    Args:
        sp: the :class:`~repro.core.runtime.SubqueryProgram`.
        batch: qual -> array of B parameter values.

    Returns:
        ``(values, valid)`` arrays of length B for scalar subqueries,
        a boolean array for EXISTS, or ``(values, seg)`` for IN.
    """
    num_segments = len(next(iter(batch.values())))
    result = _eval(sp, sp.plan, batch, num_segments)
    descriptor = sp.descriptor
    if descriptor.kind == "exists":
        seg_rel = _require_seg(result)
        return kernels.segmented_any(
            sp.ctx.device, seg_rel.seg, num_segments
        )
    if descriptor.kind == "in":
        seg_rel = _require_seg(result)
        column = next(iter(seg_rel.rel.columns.values()))
        return column.data.astype(np.float64), seg_rel.seg
    # scalar: the root produced one row per segment
    if isinstance(result, _PerSegment):
        return result.values, result.valid
    raise ExecutionError("scalar subquery did not reduce to per-segment values")


@dataclass
class _PerSegment:
    """Per-segment scalars flowing above the aggregate."""

    rel: Relation  # length num_segments
    values: np.ndarray
    valid: np.ndarray


def _require_seg(result) -> SegRelation:
    if isinstance(result, SegRelation):
        return result
    raise ExecutionError("vectorized evaluation expected a segmented relation")


def _eval(sp, node: Plan, batch, num_segments):
    profile = sp.ctx.profile_node_ns
    if profile is None:
        return _eval_node(sp, node, batch, num_segments)
    # profiling: attribute each node's *exclusive* modelled time, using
    # a child-time side channel across the recursion (the device clock
    # only gives inclusive deltas)
    ctx = sp.ctx
    stats = ctx.device.stats
    before = stats.total_ns
    saved_children = ctx._profile_child_ns
    ctx._profile_child_ns = 0.0
    try:
        result = _eval_node(sp, node, batch, num_segments)
    finally:
        inclusive = stats.total_ns - before
        exclusive = inclusive - ctx._profile_child_ns
        profile[id(node)] = profile.get(id(node), 0.0) + exclusive
        ctx._profile_child_ns = saved_children + inclusive
    return result


def _eval_node(sp, node: Plan, batch, num_segments):
    if not sp.info.is_transient(node):
        return sp.invariant_relation(node)
    if isinstance(node, Scan):
        return _eval_scan(sp, node, batch, num_segments)
    if isinstance(node, Filter):
        return _eval_filter(sp, node, batch, num_segments)
    if isinstance(node, Join):
        return _eval_join(sp, node, batch, num_segments)
    if isinstance(node, Aggregate):
        return _eval_aggregate(sp, node, batch, num_segments)
    if isinstance(node, Project):
        return _eval_project(sp, node, batch, num_segments)
    raise ExecutionError(f"vectorized path cannot execute {node!r}")


def _seg_env(batch, seg: np.ndarray) -> dict[str, np.ndarray]:
    """Row-aligned parameter arrays for a segmented relation."""
    return {qual: values[seg] for qual, values in batch.items()}


def _eval_scan(sp, node: Scan, batch, num_segments) -> SegRelation:
    """Correlated selection over a pre-filtered base relation.

    The equality against the parameter is answered through the
    node-local sorted index when indexing is enabled (one fused
    binary-search kernel for the whole batch); otherwise the device is
    charged for B full scans fused into one launch of B*N work.
    """
    base = sp.base_relation(node)
    correlated = [f for f in node.filters if referenced_params(f)]
    primary = _equality_correlation(correlated[0])
    assert primary is not None, "can_vectorize guarantees equality correlation"
    key_col, qual = primary
    params = batch[qual]

    index = sp.scan_index(node, base, key_col)
    if index is not None:
        # the index fast path already beats any fusion of the full scan
        sp.ctx.index_probes += len(params)
        rows, seg = index.lookup_batch(sp.ctx.device, params)
        rel = base.take_no_charge(rows)
        ops._materialize(sp.ctx, rel)
        out = SegRelation(rel, seg, num_segments)
        for predicate in correlated[1:]:
            out = _apply_seg_filter(sp, out, predicate, batch)
        sp.ctx.operator_done()
        return out

    # unindexed: one fused kernel doing B scans over the base; with the
    # fusion pass on, the remaining correlated predicates join it in a
    # single fused launch instead of per-stage compare/compact chains
    device = sp.ctx.device
    scope = device.begin_fused("fused_scan") if sp.fused else None
    try:
        device.launch("scan_compare", base.num_rows * len(params))
        keys = base.column(key_col.qual).data
        order = np.argsort(keys, kind="stable")
        lo = np.searchsorted(keys[order], params, side="left")
        hi = np.searchsorted(keys[order], params, side="right")
        counts = hi - lo
        total = int(counts.sum())
        seg = np.repeat(np.arange(len(params)), counts)
        starts = np.repeat(lo, counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        rows = order[starts + offsets]

        rel = base.take_no_charge(rows)
        ops._materialize(sp.ctx, rel)
        out = SegRelation(rel, seg, num_segments)
        # remaining correlated predicates (composite correlations)
        for predicate in correlated[1:]:
            out = _apply_seg_filter(sp, out, predicate, batch)
    finally:
        device.end_fused(scope)
    sp.ctx.operator_done()
    return out


def _apply_seg_filter(sp, seg_rel: SegRelation, predicate, batch) -> SegRelation:
    """One segmented filter stage; fused internally when ``sp.fused``
    (the predicate tree and its compaction collapse into one launch —
    or into an enclosing fused scope, since nested scopes flatten)."""
    env = _seg_env(batch, seg_rel.seg)
    device = sp.ctx.device
    scope = device.begin_fused("fused_filter") if sp.fused else None
    try:
        mask = evaluate(predicate, seg_rel.rel, sp.ctx, env)
        if not isinstance(mask, np.ndarray):
            if mask:
                return seg_rel
            empty = np.empty(0, dtype=np.int64)
            return SegRelation(
                seg_rel.rel.take_no_charge(empty), seg_rel.seg[empty],
                seg_rel.num_segments,
            )
        indices = kernels.compact(device, mask)
    finally:
        device.end_fused(scope)
    rel = seg_rel.rel.take_no_charge(indices)
    ops._materialize(sp.ctx, rel)
    return SegRelation(rel, seg_rel.seg[indices], seg_rel.num_segments)


def _eval_filter(sp, node: Filter, batch, num_segments) -> SegRelation:
    child = _eval(sp, node.child, batch, num_segments)
    seg_rel = _as_segmented(child, num_segments)
    out = _apply_seg_filter(sp, seg_rel, node.predicate, batch)
    sp.ctx.operator_done()
    return out


def _eval_join(sp, node: Join, batch, num_segments) -> SegRelation:
    left = _eval(sp, node.left, batch, num_segments)
    right = _eval(sp, node.right, batch, num_segments)
    left_seg = isinstance(left, SegRelation)
    right_seg = isinstance(right, SegRelation)
    device = sp.ctx.device

    if left_seg != right_seg:
        # hoisted case: hash the invariant side once, probe per batch
        if left_seg:
            probe, invariant_rel = left, right
            probe_key, invariant_key = node.left_key, node.right_key
        else:
            probe, invariant_rel = right, left
            probe_key, invariant_key = node.right_key, node.left_key
        table = sp.hoisted_hash(node, invariant_rel, invariant_key)
        probe_keys = evaluate(probe_key, probe.rel, sp.ctx, _seg_env(batch, probe.seg))
        probe_idx, build_idx = kernels.hash_probe(device, table, probe_keys)
        out_rel = probe.rel.take_no_charge(probe_idx).merged(
            invariant_rel.take_no_charge(build_idx)
        )
        ops._materialize(sp.ctx, out_rel)
        sp.ctx.operator_done()
        return SegRelation(out_rel, probe.seg[probe_idx], num_segments)

    if left_seg and right_seg:
        # both transient: join within segments via composite keys
        left_keys = evaluate(node.left_key, left.rel, sp.ctx, _seg_env(batch, left.seg))
        right_keys = evaluate(node.right_key, right.rel, sp.ctx, _seg_env(batch, right.seg))
        combined_left = left_keys.astype(np.int64) * num_segments + left.seg
        combined_right = right_keys.astype(np.int64) * num_segments + right.seg
        table = kernels.hash_build(device, combined_right)
        probe_idx, build_idx = kernels.hash_probe(device, table, combined_left)
        out_rel = left.rel.take_no_charge(probe_idx).merged(
            right.rel.take_no_charge(build_idx)
        )
        ops._materialize(sp.ctx, out_rel)
        sp.ctx.operator_done()
        return SegRelation(out_rel, left.seg[probe_idx], num_segments)

    raise ExecutionError("join of two invariant children should be invariant")


def _as_segmented(result, num_segments) -> SegRelation:
    if isinstance(result, SegRelation):
        return result
    # an invariant relation entering a transient filter: every segment
    # sees the same rows — replicate lazily via tiling of segment ids
    rel = result
    reps = np.repeat(np.arange(num_segments), rel.num_rows)
    tiled = np.tile(np.arange(rel.num_rows), num_segments)
    return SegRelation(rel.take_no_charge(tiled), reps, num_segments)


def _eval_aggregate(sp, node: Aggregate, batch, num_segments) -> _PerSegment:
    child = _eval(sp, node.child, batch, num_segments)
    seg_rel = _as_segmented(child, num_segments)
    device = sp.ctx.device
    env = _seg_env(batch, seg_rel.seg)
    columns = {}
    valid = None
    for spec in node.aggs:
        if spec.op == "count" and spec.arg is None:
            values, counts = kernels.segmented_reduce(
                device, None, seg_rel.seg, num_segments, "count"
            )
        else:
            arg = evaluate(spec.arg, seg_rel.rel, sp.ctx, env)
            if not isinstance(arg, np.ndarray):
                arg = np.full(seg_rel.num_rows, arg, dtype=np.float64)
            values, counts = kernels.segmented_reduce(
                device, arg.astype(np.float64), seg_rel.seg, num_segments, spec.op
            )
        if spec.op == "count":
            spec_valid = np.ones(num_segments, dtype=bool)
        else:
            spec_valid = counts > 0
            # SQL NULL for empty groups: the reduction identities (0 for
            # sum, +/-inf for min/max) must not leak into comparisons
            values = values.copy()
            values[~spec_valid] = np.nan
        valid = spec_valid if valid is None else (valid & spec_valid)
        columns[spec.name] = computed_column(spec.name, values)
    rel = Relation(columns, num_segments)
    ops._materialize(sp.ctx, rel)
    sp.ctx.operator_done()
    return _PerSegment(rel, values, valid)


def _eval_project(sp, node: Project, batch, num_segments):
    child = _eval(sp, node.child, batch, num_segments)
    if isinstance(child, _PerSegment):
        # scalar subquery: evaluate the (single) output expression over
        # the per-segment aggregate relation
        if len(node.exprs) != 1:
            raise ExecutionError("scalar subquery must project one column")
        data = evaluate(node.exprs[0], child.rel, sp.ctx, None)
        if not isinstance(data, np.ndarray):
            data = np.full(num_segments, data, dtype=np.float64)
        return _PerSegment(child.rel, data.astype(np.float64), child.valid)
    seg_rel = _as_segmented(child, num_segments)
    out = ops.project(sp.ctx, seg_rel.rel, node.exprs, node.names)
    return SegRelation(out, seg_rel.seg, num_segments)
