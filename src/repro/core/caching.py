"""Subquery result caching (paper Section III-D, "Caching").

When the correlated column is not a key, the same parameter tuple
re-evaluates the subquery redundantly.  The cache keys results by the
parameter tuple; with a skewed outer column most iterations become
dictionary hits, which the cost model accounts for through the ``Ch``
term of Eq. (6).
"""

from __future__ import annotations

import numpy as np


class SubqueryCache:
    """Maps parameter tuples to subquery results (scalar or boolean).

    ``namespace`` (the subquery's index within its query) is folded
    into every key: two SUBQs correlated on the same outer column see
    identical parameter tuples, and must never read each other's
    entries — even if a cache instance is ever shared between them.
    """

    def __init__(self, enabled: bool = True, namespace: object = None):
        self.enabled = enabled
        self.namespace = namespace
        self._entries: dict[tuple, tuple[float, bool]] = {}
        self.hits = 0
        self.misses = 0

    def _key(self, key: tuple) -> tuple:
        return (self.namespace,) + tuple(key)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple):
        """Cached ``(value, valid)`` or None.

        A disabled cache still counts misses — the counter doubles as
        the number of actual subquery evaluations.
        """
        if not self.enabled:
            self.misses += 1
            return None
        entry = self._entries.get(self._key(key))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: tuple, value: float, valid: bool) -> None:
        if self.enabled:
            self._entries[self._key(key)] = (value, valid)

    @property
    def hit_ratio(self) -> float:
        """Hits over probes so far (0.0 before the first probe)."""
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    # -- batch interface for the vectorized path -------------------------

    def probe_batch(
        self, keys: list[tuple]
    ) -> tuple[list[int], list[tuple[float, bool]], list[int]]:
        """Split a batch into cache hits and misses.

        Returns ``(hit_rows, hit_values, miss_rows)`` where rows index
        into ``keys``.  With caching disabled everything is a miss.
        """
        hit_rows: list[int] = []
        hit_values: list[tuple[float, bool]] = []
        miss_rows: list[int] = []
        if not self.enabled:
            return [], [], list(range(len(keys)))
        for row, key in enumerate(keys):
            entry = self._entries.get(self._key(key))
            if entry is None:
                miss_rows.append(row)
                self.misses += 1
            else:
                hit_rows.append(row)
                hit_values.append(entry)
                self.hits += 1
        return hit_rows, hit_values, miss_rows

    def put_batch(
        self, keys: list[tuple], values: np.ndarray, valid: np.ndarray
    ) -> None:
        if not self.enabled:
            return
        for key, value, ok in zip(keys, values, valid):
            self._entries[self._key(key)] = (float(value), bool(ok))
