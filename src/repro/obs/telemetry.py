"""End-to-end serving telemetry: wire-format traces, SLOs, forensics.

This module is the glue between the per-process observability layer
(:mod:`repro.obs.tracer`, :mod:`repro.obs.metrics`) and the serving
stack (:mod:`repro.serve`, :mod:`repro.net`).  Four pillars:

* **span-tree serialization** — :func:`span_to_dict` /
  :func:`span_from_dict` turn a tracer's span forest into the
  JSON-safe payload a RESULT frame can carry, and back;
  :func:`build_trace_payload` packages one executed query's
  *wall-clock* phases (queued, plan+admission, device execution —
  measured by the AsyncEngine) next to its *modelled-clock* engine
  span tree, correlated by seq/tenant/worker/stream attributes;
* **distributed trace stitching** — :func:`distributed_chrome_trace`
  merges many such payloads (possibly from several connections) into
  one Chrome/Perfetto trace document with a wall-clock lane per
  connection and a modelled lane per query, and
  :func:`validate_chrome_trace` is the in-tree conformance check CI
  and the tests share;
* **per-tenant SLOs** — :class:`SLOTracker` keeps latency histograms
  per tenant × query class, terminal-outcome counters
  (deadline-miss / backpressure / cancel / error) and error-budget
  burn against a configurable latency objective
  (:class:`SLObjective`);
* **flight recorder** — :class:`FlightRecorder` is a bounded ring of
  per-query records (sql, tenant, plan mode, adaptive switches,
  admission waits, outcome, span summary) so a failed or killed query
  is reconstructable after the fact regardless of workload length.

:func:`parse_prometheus_text` is a small validating parser for the
0.0.4 text exposition format — the round-trip half of
:meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`, kept
in-tree so CI needs no external Prometheus dependency.
"""

from __future__ import annotations

import json
import threading

from .export import _json_safe, chrome_trace_events
from .metrics import Histogram, MetricsRegistry
from .tracer import Span

# ---------------------------------------------------------------------------
# span-tree wire serialization
# ---------------------------------------------------------------------------


def span_to_dict(span: Span) -> dict:
    """One span subtree as a JSON-safe dict (attrs coerced, recursive)."""
    node: dict = {
        "name": span.name,
        "category": span.category,
        "start_ns": span.start_ns,
        "end_ns": span.end_ns,
    }
    if span.attrs:
        node["attrs"] = {k: _json_safe(v) for k, v in span.attrs.items()}
    if span.kernel_launches:
        node["kernel_launches"] = span.kernel_launches
    if span.children:
        node["children"] = [span_to_dict(child) for child in span.children]
    return node


def span_from_dict(node: dict) -> Span:
    """The inverse of :func:`span_to_dict` (a real :class:`Span` tree)."""
    span = Span(
        node["name"], node["category"], node["start_ns"],
        dict(node["attrs"]) if node.get("attrs") else None,
    )
    span.end_ns = node.get("end_ns")
    span.kernel_launches = node.get("kernel_launches", 0)
    span.children = [span_from_dict(child) for child in node.get("children", [])]
    return span


def build_trace_payload(ticket, tracer) -> dict:
    """One executed query's distributed trace, wire-ready.

    ``ticket`` is an :class:`~repro.serve.concurrent.QueryTicket` whose
    wall timestamps (submit/dequeue/admitted/start/end) the engine
    recorded; ``tracer`` is the private per-query
    :class:`~repro.obs.tracer.Tracer` whose roots hold the
    modelled-clock engine spans.  Wall phases are kept as offsets from
    the ticket's submit time (seconds) plus the absolute submit
    timestamp, so payloads from one server process can be aligned on a
    common wall axis.
    """
    correlation = {
        "seq": ticket.seq,
        "tenant": ticket.tenant or "default",
        "worker": ticket.worker,
        "stream": ticket.stream,
        "status": ticket.status,
    }
    submit = ticket.wall_submit_s
    phases = []

    def phase(name: str, start_s, end_s) -> None:
        if start_s is None or end_s is None or end_s < start_s:
            return
        phases.append({
            "name": name,
            "start_s": start_s - submit,
            "dur_s": end_s - start_s,
        })

    phase("queued", submit, ticket.wall_dequeue_s)
    phase("plan+admission", ticket.wall_dequeue_s, ticket.wall_admitted_s)
    phase("execute", ticket.wall_start_s, ticket.wall_end_s)
    roots, dropped = tracer.export_roots()
    return {
        "query": correlation,
        "wall_submit_s": submit,
        "wall": phases,
        "modelled": [span_to_dict(root) for root in roots],
        "dropped_spans": dropped,
    }


# ---------------------------------------------------------------------------
# distributed Chrome trace stitching
# ---------------------------------------------------------------------------

#: Synthetic pids for the two clock domains of a distributed trace.
WALL_PID = 1
MODELLED_PID = 2


def distributed_chrome_trace(payloads) -> dict:
    """Many query-trace payloads as one Chrome/Perfetto document.

    Lanes: the *wall-clock* process carries one thread per connection
    (every query's queued / plan+admission / execute phases are ``X``
    slices on its connection's lane, aligned on real time), and the
    *modelled-device-clock* process carries one thread per query (each
    query's engine span tree starts at its own zero — modelled clocks
    reset per query, so giving each query a lane keeps every ``B``/``E``
    pair properly nested).  Correlation attributes (seq, tenant,
    worker, stream, query_id when the payload carries one) ride on
    every event's ``args``.
    """
    payloads = list(payloads)
    events: list[dict] = []
    origin = min(
        (p["wall_submit_s"] for p in payloads), default=0.0,
    )
    events.append(_metadata(WALL_PID, "process_name", name="wall clock"))
    events.append(
        _metadata(MODELLED_PID, "process_name", name="modelled device clock")
    )
    seen_connections: set[int] = set()
    for payload in payloads:
        correlation = dict(payload.get("query", {}))
        if "query_id" in payload:
            correlation["query_id"] = payload["query_id"]
        connection = int(payload.get("connection", 0))
        if connection not in seen_connections:
            seen_connections.add(connection)
            events.append(_metadata(
                WALL_PID, "thread_name", tid=connection,
                name=f"connection {connection}",
            ))
        base_us = (payload["wall_submit_s"] - origin) * 1e6
        for phase in payload.get("wall", []):
            events.append({
                "name": phase["name"],
                "cat": "wall",
                "ph": "X",
                "ts": base_us + phase["start_s"] * 1e6,
                "dur": phase["dur_s"] * 1e6,
                "pid": WALL_PID,
                "tid": connection,
                "args": dict(correlation),
            })
        seq = correlation.get("seq", 0)
        stream = correlation.get("stream")
        events.append(_metadata(
            MODELLED_PID, "thread_name", tid=seq,
            name=f"query #{seq} (stream {stream})",
        ))
        roots = [span_from_dict(node) for node in payload.get("modelled", [])]
        for event in chrome_trace_events(roots, pid=MODELLED_PID, tid=seq):
            args = event.setdefault("args", {})
            args.update(
                (k, v) for k, v in correlation.items() if k not in args
            )
            events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "wall-us + modelled-device-ns",
            "queries": len(payloads),
            "dropped_spans": sum(
                p.get("dropped_spans", 0) for p in payloads
            ),
        },
    }


def _metadata(pid: int, kind: str, tid: int = 0, name: str = "") -> dict:
    return {
        "name": kind, "ph": "M", "pid": pid, "tid": tid,
        "args": {"name": name},
    }


def validate_chrome_trace(document: dict) -> int:
    """Check a Chrome trace document's structural invariants.

    Every ``B`` must close with an ``E`` in stack order *per (pid,
    tid) lane*, ``X`` events must carry non-negative durations, and
    metadata events are ignored.  Returns the event count; raises
    ``ValueError`` on the first violation.  This is the shared
    validator the CI smoke jobs and the tests import.
    """
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace has no events")
    stacks: dict[tuple, list] = {}
    for event in events:
        phase = event.get("ph")
        lane = (event.get("pid"), event.get("tid"))
        if phase == "M":
            continue
        if phase == "B":
            stacks.setdefault(lane, []).append(event)
        elif phase == "E":
            stack = stacks.get(lane)
            if not stack:
                raise ValueError(f"E without B on lane {lane}: {event}")
            begin = stack.pop()
            if event["ts"] < begin["ts"]:
                raise ValueError(
                    f"span ends before it starts on lane {lane}: "
                    f"{begin['name']}"
                )
        elif phase == "X":
            if event.get("dur", -1) < 0:
                raise ValueError(f"X event without a duration: {event}")
        else:
            raise ValueError(f"unknown event phase {phase!r}: {event}")
    for lane, stack in stacks.items():
        if stack:
            raise ValueError(
                f"unclosed spans on lane {lane}: "
                f"{[e['name'] for e in stack]}"
            )
    return len(events)


# ---------------------------------------------------------------------------
# per-tenant SLOs
# ---------------------------------------------------------------------------


class SLObjective:
    """A latency objective: ``target`` of queries within ``latency_ms``.

    The error budget is the allowed violation fraction ``1 - target``;
    burn is the observed violation fraction divided by the budget, so
    ``burn < 1`` means the tenant is inside its SLO and ``burn == 2``
    means violations are arriving at twice the sustainable rate.
    """

    __slots__ = ("latency_ms", "target")

    def __init__(self, latency_ms: float = 1000.0, target: float = 0.99):
        if latency_ms <= 0:
            raise ValueError("latency_ms must be positive")
        if not 0.0 < target < 1.0:
            raise ValueError("target must be in (0, 1)")
        self.latency_ms = float(latency_ms)
        self.target = float(target)

    def to_dict(self) -> dict:
        return {"latency_ms": self.latency_ms, "target": self.target}


#: Terminal outcomes the tracker counts; "ok" means completed.
OUTCOMES = ("ok", "error", "cancelled", "deadline", "rejected")


class _TenantSLO:
    """One tenant's rolling SLO state (guarded by the tracker's lock)."""

    __slots__ = (
        "objective", "latency", "by_class", "outcomes",
        "good", "total", "backpressure",
    )

    def __init__(self, objective: SLObjective):
        self.objective = objective
        self.latency = Histogram("latency_ms")
        self.by_class: dict[str, Histogram] = {}
        self.outcomes = {outcome: 0 for outcome in OUTCOMES}
        self.good = 0
        self.total = 0
        self.backpressure = 0


class SLOTracker:
    """Per-tenant latency SLOs over end-to-end (submit → terminal) time.

    ``observe`` classifies each terminal query by tenant and *query
    class* (the plan path — nested/unnested — is the serving stack's
    choice) and scores it against the tenant's objective: a query is
    *good* when it completed ok within the latency objective;
    everything else — slow, errored, cancelled, deadline-missed,
    rejected — burns error budget.  When a :class:`MetricsRegistry` is
    attached, per-tenant series are mirrored under
    ``qos.tenant.<name>.slo.*`` so they ride the STATS frame and the
    Prometheus exposition for free.
    """

    def __init__(
        self,
        objectives: dict[str, SLObjective] | None = None,
        default: SLObjective | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.default = default if default is not None else SLObjective()
        self.objectives = dict(objectives or {})
        self.metrics = metrics
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantSLO] = {}

    def objective(self, tenant: str) -> SLObjective:
        return self.objectives.get(tenant, self.default)

    def _tenant(self, tenant: str) -> _TenantSLO:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantSLO(self.objective(tenant))
        return state

    def observe(
        self,
        tenant: str,
        latency_ms: float,
        outcome: str = "ok",
        query_class: str = "unknown",
    ) -> None:
        """Score one terminal query against its tenant's objective."""
        if outcome not in OUTCOMES:
            raise ValueError(
                f"unknown outcome {outcome!r}; expected one of {OUTCOMES}"
            )
        with self._lock:
            state = self._tenant(tenant)
            state.latency.observe(latency_ms)
            by_class = state.by_class.get(query_class)
            if by_class is None:
                by_class = state.by_class[query_class] = Histogram(query_class)
            by_class.observe(latency_ms)
            state.outcomes[outcome] += 1
            state.total += 1
            if outcome == "ok" and latency_ms <= state.objective.latency_ms:
                state.good += 1
        metrics = self.metrics
        if metrics is not None:
            prefix = f"qos.tenant.{tenant}.slo"
            metrics.histogram(f"{prefix}.latency_ms").observe(latency_ms)
            if outcome == "deadline":
                metrics.counter(f"{prefix}.deadline_missed").inc()
            elif outcome != "ok":
                metrics.counter(f"{prefix}.{outcome}").inc()

    def note_backpressure(self, tenant: str) -> None:
        """Count a submission pushed back by the bounded queue."""
        with self._lock:
            self._tenant(tenant).backpressure += 1
        if self.metrics is not None:
            self.metrics.counter(
                f"qos.tenant.{tenant}.slo.backpressure"
            ).inc()

    @staticmethod
    def _burn(state: _TenantSLO) -> float:
        if state.total == 0:
            return 0.0
        violation_fraction = (state.total - state.good) / state.total
        budget = 1.0 - state.objective.target
        return violation_fraction / budget

    def snapshot(self) -> dict[str, dict]:
        """Every tenant's SLO state, JSON-ready (a consistent view)."""
        with self._lock:
            out = {}
            for name in sorted(self._tenants):
                state = self._tenants[name]
                out[name] = {
                    "objective": state.objective.to_dict(),
                    "latency_ms": {
                        "count": state.latency.count,
                        "mean": state.latency.mean,
                        **state.latency.percentiles(),
                    },
                    "by_class": {
                        klass: {
                            "count": hist.count,
                            **hist.percentiles(),
                        }
                        for klass, hist in sorted(state.by_class.items())
                    },
                    "outcomes": dict(state.outcomes),
                    "deadline_missed": state.outcomes["deadline"],
                    "backpressure": state.backpressure,
                    "good": state.good,
                    "total": state.total,
                    "error_budget_burn": self._burn(state),
                }
            return out


# ---------------------------------------------------------------------------
# the flight recorder
# ---------------------------------------------------------------------------


class FlightRecorder:
    """A bounded ring of per-query forensic records (always on).

    Every terminal query — ok, error, cancelled, deadline-missed,
    rejected — leaves one small JSON-safe record.  The ring holds the
    most recent ``capacity`` records regardless of workload length;
    ``recorded`` counts everything ever seen and ``dropped`` the
    overflow, so a dump is honest about what it no longer holds.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.recorded = 0
        self._lock = threading.Lock()
        self._ring: list[dict] = []

    def record(self, **fields) -> dict:
        """Append one record (returned so callers can attach it)."""
        entry = {k: _json_safe(v) for k, v in fields.items()}
        with self._lock:
            self.recorded += 1
            self._ring.append(entry)
            overflow = len(self._ring) - self.capacity
            if overflow > 0:
                del self._ring[:overflow]
        return entry

    @property
    def dropped(self) -> int:
        with self._lock:
            return self.recorded - len(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def dump(self, limit: int | None = None) -> list[dict]:
        """The newest-last record list (optionally only the last N)."""
        with self._lock:
            records = list(self._ring)
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return records

    def to_dict(self, limit: int | None = None) -> dict:
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "records": self.dump(limit),
        }

    def write_json(self, path, limit: int | None = None) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(limit), handle, indent=2)
            handle.write("\n")


def summarize_spans(roots) -> list[dict]:
    """Top-level phases of a span forest, one line each (for records)."""
    summary = []
    for root in roots:
        nodes = root.children if root.category == "query" else [root]
        for node in nodes:
            summary.append({
                "name": node.name,
                "category": node.category,
                "duration_ms": node.duration_ns / 1e6,
                "children": len(node.children),
                **({"attrs": {
                    k: _json_safe(v) for k, v in node.attrs.items()
                }} if node.attrs else {}),
            })
    return summary


# ---------------------------------------------------------------------------
# Prometheus text parsing (the round-trip half, in-tree)
# ---------------------------------------------------------------------------


def parse_prometheus_text(text: str) -> dict:
    """Parse and validate Prometheus 0.0.4 text exposition.

    Returns ``{"types": {family: kind}, "samples": [(name, labels,
    value)]}``.  Validates what a scraper would reject: samples whose
    family carries no TYPE line, unparsable values, histogram bucket
    series that are non-monotonic in ``le`` or disagree with their
    ``_count``.  Raises ``ValueError`` on the first violation — this
    is CI's no-external-dependency round-trip check.
    """
    types: dict[str, str] = {}
    samples: list[tuple[str, dict, float]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            parts = stripped.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValueError(f"line {lineno}: malformed TYPE: {line}")
                types[parts[2]] = parts[3]
            continue
        samples.append(_parse_sample(stripped, lineno))
    buckets: dict[tuple, list] = {}
    counts: dict[tuple, float] = {}
    for name, labels, value in samples:
        family = _sample_family(name, types)
        if family is None:
            raise ValueError(f"sample {name} has no # TYPE line")
        if types[family] == "histogram":
            key = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            ))
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    raise ValueError(f"{name}: _bucket sample without le")
                buckets.setdefault((family, key), []).append(
                    (math_inf_parse(le), value)
                )
            elif name.endswith("_count"):
                counts[(family, key)] = value
    for key, series in buckets.items():
        series.sort()
        cumulative = [count for _, count in series]
        if any(b < a for a, b in zip(cumulative, cumulative[1:])):
            raise ValueError(f"{key[0]}: non-monotonic histogram buckets")
        if not series or series[-1][0] != float("inf"):
            raise ValueError(f"{key[0]}: histogram without a +Inf bucket")
        if key in counts and series[-1][1] != counts[key]:
            raise ValueError(
                f"{key[0]}: +Inf bucket {series[-1][1]} != _count {counts[key]}"
            )
    return {"types": types, "samples": samples}


def math_inf_parse(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def _sample_family(name: str, types: dict) -> str | None:
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def _parse_sample(line: str, lineno: int) -> tuple[str, dict, float]:
    brace = line.find("{")
    labels: dict[str, str] = {}
    if brace >= 0:
        close = line.rfind("}")
        if close < brace:
            raise ValueError(f"line {lineno}: unbalanced braces: {line}")
        name = line[:brace]
        label_text = line[brace + 1:close]
        rest = line[close + 1:].strip()
        for part in _split_labels(label_text):
            eq = part.find("=")
            if eq < 0 or len(part) < eq + 3 or part[eq + 1] != '"' \
                    or not part.endswith('"'):
                raise ValueError(f"line {lineno}: malformed label: {part!r}")
            labels[part[:eq]] = (
                part[eq + 2:-1]
                .replace(r"\n", "\n").replace(r"\"", '"').replace("\\\\", "\\")
            )
    else:
        name, _, rest = line.partition(" ")
        rest = rest.strip()
    value_text = rest.split()[0] if rest else ""
    try:
        value = math_inf_parse(value_text)
    except ValueError:
        raise ValueError(
            f"line {lineno}: unparsable value {value_text!r}"
        ) from None
    if not name:
        raise ValueError(f"line {lineno}: sample without a name")
    return name, labels, value


def _split_labels(text: str):
    """Split ``a="x",b="y,z"`` on commas outside quoted values."""
    parts = []
    current = []
    in_quotes = False
    escaped = False
    for char in text:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            if current:
                parts.append("".join(current))
                current = []
            continue
        current.append(char)
    if current:
        parts.append("".join(current))
    return parts
