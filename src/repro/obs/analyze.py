"""EXPLAIN ANALYZE: run a query under the tracer and render the plan
tree annotated with measured (modelled) per-operator cost.

This module is imported lazily (``NestGPU.explain(analyze=True)``,
``repro.cli --analyze``) so that :mod:`repro.obs` itself stays free of
engine imports.
"""

from __future__ import annotations

from .export import write_chrome_trace
from .tracer import Tracer


def _ms(ns: float) -> str:
    return f"{ns / 1e6:.4f} ms"


def explain_analyze(system, sql, mode=None, tracer=None, metrics=None):
    """Execute ``sql`` on ``system`` with tracing on and return an
    :class:`AnalyzeReport`.

    A fresh enabled :class:`Tracer` is created unless one is passed in;
    either way the report keeps a reference so the caller can export
    the trace afterwards.
    """
    if tracer is None:
        tracer = Tracer()
    query_span = None
    if tracer.enabled:
        from ..core.executor import _sql_snippet

        query_span = tracer.begin("query", "query", sql=_sql_snippet(sql))
    try:
        prepared = system.prepare(sql, mode, tracer=tracer)
        result = system.run_prepared(prepared, tracer=tracer, metrics=metrics)
    finally:
        if query_span is not None:
            tracer.end(query_span)
    return AnalyzeReport(prepared, result, tracer)


class AnalyzeReport:
    """A completed EXPLAIN ANALYZE run: prepared query, result, trace."""

    def __init__(self, prepared, result, tracer):
        self.prepared = prepared
        self.result = result
        self.tracer = tracer
        # node identity -> registry index (the key of node_times_ns)
        self._node_ids = {
            id(node): i for i, node in enumerate(prepared.program.nodes)
        }

    # -- accounting ---------------------------------------------------------

    def node_ns(self, node) -> float:
        """Total modelled ns attributed to one plan node, merging the
        loop-path registry times with the vectorized-path profile."""
        r = self.result
        ns = r.node_times_ns.get(self._node_ids.get(id(node), -1), 0.0)
        ns += r.vector_node_ns.get(id(node), 0.0)
        return ns

    def accounting(self) -> dict[str, float]:
        """Where the modelled time went, in ns.  The buckets are
        disjoint by construction and ``unattributed`` closes the sum to
        ``stats.total_ns`` exactly."""
        r = self.result
        operators = sum(r.node_times_ns.values()) + sum(
            r.vector_node_ns.values()
        )
        overhead = sum(r.subquery_overhead_ns.values())
        total = r.stats.total_ns
        attributed = r.preload_ns + operators + overhead + r.fetch_ns
        return {
            "preload_ns": r.preload_ns,
            "operators_ns": operators,
            "subquery_setup_ns": overhead,
            "fetch_ns": r.fetch_ns,
            "unattributed_ns": total - attributed,
            "total_ns": total,
        }

    # -- rendering ----------------------------------------------------------

    def _annotate(self, node, extra: str = "") -> str:
        r = self.result
        nid = self._node_ids.get(id(node))
        parts = [f"actual={_ms(self.node_ns(node))}"]
        if nid is not None:
            if nid in r.node_output_rows:
                parts.append(f"rows={r.node_output_rows[nid]}")
            if r.node_calls.get(nid, 0) > 1:
                parts.append(f"calls={r.node_calls[nid]}")
            if r.node_launches.get(nid):
                parts.append(f"launches={r.node_launches[nid]}")
        if extra:
            parts.append(extra)
        return "  (" + ", ".join(parts) + ")"

    def _tree_lines(self, plan, info=None, indent: int = 1) -> list[str]:
        lines = []

        def visit(node, depth):
            mark = ""
            if info is not None:
                mark = (
                    "[transient] " if info.is_transient(node)
                    else "[invariant] "
                )
            lines.append(
                "  " * depth + mark + str(node) + self._annotate(node)
            )
            for child in node.children():
                visit(child, depth + 1)

        visit(plan, indent)
        return lines

    def render(self) -> str:
        from ..plan.invariants import mark_invariants

        p, r = self.prepared, self.result
        lines = [f"EXPLAIN ANALYZE — execution path: {p.choice}"]
        if p.sql:
            lines.append(f"query: {' '.join(p.sql.split())}")
        summary = (
            f"modelled time: {r.total_ms:.4f} ms   rows: {r.num_rows}"
            f"   kernel launches: {r.stats.kernel_launches}"
        )
        if r.predicted_ms is not None and r.total_ms > 0:
            err = (r.predicted_ms - r.total_ms) / r.total_ms * 100.0
            summary += (
                f"   cost model predicted: {r.predicted_ms:.4f} ms"
                f" ({err:+.1f}%)"
            )
        decision = getattr(p, "fusion_decision", None)
        if decision is not None and decision.source != "off":
            fusion = f"fusion: {decision.describe()}"
            if r.stats.fused_launches:
                fusion += (
                    f"   fused launches: {r.stats.fused_launches}"
                    f" (absorbed {r.stats.fused_kernels} kernels, saved "
                    f"{r.stats.fused_kernels - r.stats.fused_launches}"
                    " launches)"
                )
            lines.append(fusion)
        lines += [summary, "", "outer plan:"]
        lines += self._tree_lines(p.plan)
        for k, spec in enumerate(p.program.specs):
            descriptor = spec.descriptor
            key = descriptor.index
            corr = (
                ", correlated on " + ", ".join(descriptor.free_quals)
                if descriptor.free_quals else ""
            )
            lines += ["", f"subquery #{k} ({descriptor.kind}{corr}):"]
            iters = r.subquery_iterations.get(key, 0)
            batches = r.subquery_batches.get(key, 0)
            hits, misses = r.subquery_cache.get(key, (0, 0))
            stat_parts = [f"iterations={iters}"]
            if batches:
                stat_parts.append(f"vectorized batches={batches}")
            if hits or misses:
                total = hits + misses
                stat_parts.append(
                    f"cache hits={hits}/{total}"
                    f" ({hits / total:.0%})"
                )
            stat_parts.append(
                "setup " + _ms(r.subquery_overhead_ns.get(key, 0.0))
            )
            lines.append("  " + "   ".join(stat_parts))
            lines += self._tree_lines(spec.plan, mark_invariants(spec.plan))
        acc = self.accounting()
        lines += [
            "",
            "time accounting:",
            f"  preload (PCIe + alloc)  {_ms(acc['preload_ns'])}",
            f"  plan operators          {_ms(acc['operators_ns'])}",
            f"  subquery setup          {_ms(acc['subquery_setup_ns'])}",
            f"  result fetch            {_ms(acc['fetch_ns'])}",
            f"  unattributed            {_ms(acc['unattributed_ns'])}",
            f"  total                   {_ms(acc['total_ns'])}",
        ]
        return "\n".join(lines)

    def write_trace(self, path) -> None:
        """Finish the trace (if still open) and export Chrome JSON."""
        self.tracer.finish()
        write_chrome_trace(path, self.tracer)
