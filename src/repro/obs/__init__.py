"""Observability: span tracing, metrics, exporters, EXPLAIN ANALYZE.

This package depends only on the standard library (plus duck-typed
engine objects), so any layer — the simulated device included — may
import it without cycles.  :mod:`repro.obs.analyze` (EXPLAIN ANALYZE)
is imported lazily by its callers to keep that property.
:mod:`repro.obs.telemetry` adds the serving-facing layer: wire-format
span trees, distributed Chrome traces, per-tenant SLO tracking, the
flight recorder, and the Prometheus text round-trip.
"""

from .export import (
    chrome_trace_events,
    to_chrome_trace,
    write_chrome_trace,
    write_trace_document,
)
from .metrics import (
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .telemetry import (
    FlightRecorder,
    SLObjective,
    SLOTracker,
    build_trace_payload,
    distributed_chrome_trace,
    parse_prometheus_text,
    span_from_dict,
    span_to_dict,
    summarize_spans,
    validate_chrome_trace,
)
from .tracer import (
    NULL_TRACER,
    STRUCTURAL_CATEGORIES,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PROMETHEUS_CONTENT_TYPE",
    "SLObjective",
    "SLOTracker",
    "STRUCTURAL_CATEGORIES",
    "Span",
    "Tracer",
    "build_trace_payload",
    "chrome_trace_events",
    "distributed_chrome_trace",
    "parse_prometheus_text",
    "span_from_dict",
    "span_to_dict",
    "summarize_spans",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_trace_document",
]
