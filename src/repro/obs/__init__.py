"""Observability: span tracing, metrics, exporters, EXPLAIN ANALYZE.

This package depends only on the standard library (plus duck-typed
engine objects), so any layer — the simulated device included — may
import it without cycles.  :mod:`repro.obs.analyze` (EXPLAIN ANALYZE)
is imported lazily by its callers to keep that property.
"""

from .export import chrome_trace_events, to_chrome_trace, write_chrome_trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import (
    NULL_TRACER,
    STRUCTURAL_CATEGORIES,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "STRUCTURAL_CATEGORIES",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
]
