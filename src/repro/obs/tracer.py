"""Hierarchical span tracing keyed to the modelled device clock.

Spans nest query -> phase (parse/bind/plan/codegen/execute) -> plan
operator -> subquery iteration/batch -> kernel/transfer leaves.  Every
timestamp is *modelled* device time (``ExecutionStats.total_ns``), not
wall-clock, so a trace of the same query is deterministic and the
tracer can never perturb the numbers it reports: recording a span
charges nothing to the device.

The default tracer everywhere is :data:`NULL_TRACER`, whose methods do
nothing; instrumentation sites guard hot paths with ``tracer.enabled``
so the disabled mode costs one attribute check.

Thread safety: every recording operation (begin/end/leaf and the loop
helpers) is atomic under the tracer's internal lock, so concurrent
threads can never corrupt the span forest, lose a span, or tear the
``dropped`` counter.  The *nesting* of structural spans, however,
follows one shared stack — interleaved begin/end pairs from two
threads would parent each other's spans — so concurrent serving keeps
whole query executions serialized under the session lock and only
``leaf``-level events are meaningful from arbitrary threads.
"""

from __future__ import annotations

import threading
import time

#: Categories rendered as begin/end pairs in the Chrome trace.  Their
#: children's time is *theirs* (a subquery span contains its
#: iterations); everything else ("kernel", "transfer", "materialize",
#: "malloc") is a leaf whose time belongs to the enclosing structural
#: span's self time.
STRUCTURAL_CATEGORIES = frozenset(
    {"session", "query", "phase", "operator", "subquery", "iteration", "batch"}
)

#: Categories an ``end_iteration`` scan must not cross: reaching one of
#: these means the nearest open iteration belongs to an *enclosing*
#: loop level, not to the caller.
_BOUNDARY_CATEGORIES = frozenset({"subquery", "batch", "phase", "query"})


class Span:
    """One timed region on the modelled clock, with child spans."""

    __slots__ = ("name", "category", "start_ns", "end_ns", "attrs",
                 "children", "kernel_launches", "_wall")

    def __init__(self, name: str, category: str, start_ns: float,
                 attrs: dict | None = None):
        self.name = name
        self.category = category
        self.start_ns = start_ns
        self.end_ns: float | None = None
        self.attrs = attrs
        self.children: list[Span] = []
        self.kernel_launches = 0
        self._wall: float | None = None

    @property
    def duration_ns(self) -> float:
        end = self.start_ns if self.end_ns is None else self.end_ns
        return end - self.start_ns

    @property
    def self_ns(self) -> float:
        """Duration minus structural children (leaf charges stay ours)."""
        return self.duration_ns - sum(
            child.duration_ns for child in self.children
            if child.category in STRUCTURAL_CATEGORIES
        )

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def find_all(self, category: str) -> list["Span"]:
        return [span for span in self.walk() if span.category == category]

    def set_attrs(self, **attrs) -> None:
        self.attrs = {**(self.attrs or {}), **attrs}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.category}:{self.name} "
            f"{self.start_ns:.0f}..{self.end_ns} "
            f"children={len(self.children)}>"
        )


class _NullContext:
    """Shared no-op context manager returned by ``NullTracer.span``."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The zero-cost default: every operation is a no-op.

    Instrumentation sites may either call these methods directly (cold
    paths) or skip the call entirely after checking ``enabled`` (hot
    paths); both are correct.
    """

    enabled = False

    def bind_device(self, device) -> None:
        pass

    def begin(self, name: str, category: str, **attrs):
        return None

    def end(self, span=None, **attrs):
        return None

    def leaf(self, name: str, category: str, duration_ns: float, **attrs) -> None:
        pass

    def span(self, name: str, category: str, **attrs):
        return _NULL_CONTEXT

    def close_siblings(self, category: str) -> None:
        pass

    def end_iteration(self, **attrs):
        return None

    def finish(self) -> None:
        pass


#: The process-wide disabled tracer (safe to share: it holds no state).
NULL_TRACER = NullTracer()


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> bool:
        self._tracer.end(self._span)
        return False


class Tracer(NullTracer):
    """Records a forest of :class:`Span` trees on the modelled clock.

    The clock is read from the currently bound device's running stats;
    when a new device is bound (each ``run_prepared`` creates one, with
    its clock at zero) timestamps are rebased so a multi-query trace
    stays monotonic.

    ``max_spans`` bounds memory on pathological traces: spans past the
    cap still participate in stack discipline but are not recorded, and
    ``dropped`` counts them.
    """

    enabled = True

    def __init__(self, max_spans: int = 200_000):
        self.roots: list[Span] = []
        self.dropped = 0
        self._stack: list[Span] = []
        self._count = 0
        self._max_spans = max_spans
        self._device = None
        self._offset = 0.0
        self._max_ts = 0.0
        # reentrant: the loop helpers (close_siblings, finish) call end()
        self._lock = threading.RLock()

    # -- clock ----------------------------------------------------------

    def now(self) -> float:
        if self._device is None:
            return self._offset
        return self._offset + self._device.stats.total_ns

    def bind_device(self, device) -> None:
        """Start reading the clock from ``device`` (rebased)."""
        with self._lock:
            self._offset = self._max_ts
            self._device = device

    # -- spans ----------------------------------------------------------

    def begin(self, name: str, category: str, **attrs) -> Span:
        with self._lock:
            ts = self.now()
            if ts > self._max_ts:
                self._max_ts = ts
            span = Span(name, category, ts, attrs or None)
            span._wall = time.perf_counter()
            if self._count >= self._max_spans:
                self.dropped += 1
            else:
                self._count += 1
                if self._stack:
                    self._stack[-1].children.append(span)
                else:
                    self.roots.append(span)
            self._stack.append(span)
            return span

    def end(self, span: Span | None = None, **attrs) -> Span | None:
        """Close the top span, or pop down to (and close) ``span``.

        Closing a specific span also closes anything opened inside it
        that was left dangling — the stack discipline an exception path
        relies on.
        """
        with self._lock:
            if span is not None and span not in self._stack:
                return None
            ts = self.now()
            if ts > self._max_ts:
                self._max_ts = ts
            while self._stack:
                top = self._stack.pop()
                top.end_ns = ts
                if top is span or span is None:
                    if attrs:
                        top.set_attrs(**attrs)
                    if top.category in ("query", "phase") and top._wall is not None:
                        top.set_attrs(
                            wall_us=(time.perf_counter() - top._wall) * 1e6
                        )
                    return top
            return None

    def span(self, name: str, category: str, **attrs) -> _SpanContext:
        return _SpanContext(self, self.begin(name, category, **attrs))

    def leaf(self, name: str, category: str, duration_ns: float, **attrs) -> None:
        """Record an already-charged device event (kernel, transfer).

        Called *after* the charge, so the event ends at ``now()``.
        """
        with self._lock:
            end_ns = self.now()
            if end_ns > self._max_ts:
                self._max_ts = end_ns
            parent = self._stack[-1] if self._stack else None
            if category == "kernel" and parent is not None:
                parent.kernel_launches += 1
            if self._count >= self._max_spans:
                self.dropped += 1
                return
            self._count += 1
            span = Span(name, category, end_ns - duration_ns, attrs or None)
            span.end_ns = end_ns
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)

    # -- loop discipline --------------------------------------------------

    def close_siblings(self, category: str) -> None:
        """Close consecutive open spans of ``category`` at the top.

        The runtime has no explicit "subquery done" hook — the next
        subquery (or the predicate application) closes its predecessor.
        """
        with self._lock:
            while self._stack and self._stack[-1].category == category:
                self.end()

    def end_iteration(self, **attrs) -> Span | None:
        """Close the innermost open iteration span, if any.

        Stops at subquery/batch/phase boundaries so a store inside a
        vectorized batch never closes an *enclosing* loop's iteration.
        """
        with self._lock:
            for span in reversed(self._stack):
                if span.category == "iteration":
                    return self.end(span, **attrs)
                if span.category in _BOUNDARY_CATEGORIES:
                    return None
            return None

    def finish(self) -> None:
        """Close every span still open (end of a trace session)."""
        with self._lock:
            while self._stack:
                self.end()

    def export_roots(self) -> tuple[list[Span], int]:
        """A consistent ``(roots, dropped)`` snapshot for serialization.

        The list is a copy taken under the lock, so an exporter on one
        thread never sees a root appear mid-iteration; the spans
        themselves are shared (exporters run after ``finish``).
        """
        with self._lock:
            return list(self.roots), self.dropped
