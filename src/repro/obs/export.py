"""Trace exporters.

:func:`to_chrome_trace` renders a tracer's span forest in the Chrome
trace-event format (the ``traceEvents`` array Perfetto and
``chrome://tracing`` load directly): structural spans become nested
``B``/``E`` begin/end pairs, leaf device events (kernels, transfers,
materialization) become ``X`` complete events.  Timestamps are the
modelled device clock converted from nanoseconds to the format's
microseconds.
"""

from __future__ import annotations

import json

from .tracer import STRUCTURAL_CATEGORIES, Span, Tracer


def _json_safe(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


def _args(span: Span) -> dict:
    args = {k: _json_safe(v) for k, v in (span.attrs or {}).items()}
    if span.kernel_launches:
        args["kernel_launches"] = span.kernel_launches
    return args


def chrome_trace_events(roots: list[Span], pid: int = 0, tid: int = 0) -> list[dict]:
    events: list[dict] = []

    def visit(span: Span) -> None:
        end_ns = span.start_ns if span.end_ns is None else span.end_ns
        if span.category in STRUCTURAL_CATEGORIES:
            events.append({
                "name": span.name, "cat": span.category, "ph": "B",
                "ts": span.start_ns / 1e3, "pid": pid, "tid": tid,
                "args": _args(span),
            })
            for child in span.children:
                visit(child)
            events.append({
                "name": span.name, "cat": span.category, "ph": "E",
                "ts": end_ns / 1e3, "pid": pid, "tid": tid,
            })
        else:
            events.append({
                "name": span.name, "cat": span.category, "ph": "X",
                "ts": span.start_ns / 1e3, "dur": (end_ns - span.start_ns) / 1e3,
                "pid": pid, "tid": tid, "args": _args(span),
            })

    for root in roots:
        visit(root)
    return events


def to_chrome_trace(tracer: Tracer) -> dict:
    """The complete Perfetto-loadable trace document."""
    return {
        "traceEvents": chrome_trace_events(tracer.roots),
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "modelled-device-ns",
            "dropped_spans": tracer.dropped,
        },
    }


def write_chrome_trace(path, tracer: Tracer) -> None:
    write_trace_document(path, to_chrome_trace(tracer))


def write_trace_document(path, document: dict) -> None:
    """Write any Chrome-trace-shaped document (local or distributed)."""
    with open(path, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")
