"""A small metrics registry: counters, gauges, histograms, query log.

The registry is engine-agnostic state the executor fills in after each
run: cache hit ratios, pool reuse vs. raw mallocs, index probes, PCIe
transfer fractions, and the cost model's predicted-vs-actual error per
query (the Figure 15/16 accuracy data, recomputable from any session's
dump).

The registry is shared by every worker of a concurrent serving engine,
so each metric's read-modify-write update (``value += amount``, the
histogram's fields) happens under the metric's own lock, and
get-or-create goes through the registry lock — an unsynchronized
``inc`` from two threads loses updates at the bytecode level even
under the GIL.  Every read-side dump (``to_dict``, ``render_text``,
``render_prometheus``, ``dump_prefix``) snapshots the metric maps
under the registry lock first, so a concurrent get-or-create can never
mutate a dict mid-iteration.

Histograms are quantile-capable: alongside the streaming
count/sum/min/max they keep log2-spaced buckets, so ``quantile(0.99)``
returns a bucketed estimate (exact to within one bucket boundary,
clamped to the observed min/max) and ``render_prometheus`` can expose
the classic ``_bucket``/``_sum``/``_count`` series.
"""

from __future__ import annotations

import json
import math
import re
import threading

#: The exposition format version served by the METRICS opcode.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Histogram bucket exponent clamp: values land in bucket ``e`` when
#: ``2**(e-1) < v <= 2**e``; anything below 2**_BUCKET_MIN (incl. 0 and
#: negatives) goes to the bottom bucket, anything above 2**_BUCKET_MAX
#: to the top one.  The range covers sub-microsecond to ~1e18.
_BUCKET_MIN = -40
_BUCKET_MAX = 60


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock | None = None):
        self.name = name
        self.value = 0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock | None = None):
        self.name = name
        self.value: float | None = None
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


def _bucket_exp(value: float) -> int:
    """The log2 bucket a value falls in (``2**(e-1) < v <= 2**e``)."""
    if value <= 0:
        return _BUCKET_MIN
    exp = math.ceil(math.log2(value))
    # float fuzz: log2(2**k) can land a hair above k; pull back when
    # the value actually fits the bucket below
    if value <= 2.0 ** (exp - 1):
        exp -= 1
    return max(_BUCKET_MIN, min(_BUCKET_MAX, exp))


class Histogram:
    """Streaming count/sum/min/max plus log2 buckets for quantiles."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_lock")

    def __init__(self, name: str, lock: threading.Lock | None = None):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}  # exponent -> count (sparse)
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            exp = _bucket_exp(value)
            self.buckets[exp] = self.buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _quantile_locked(self, q: float) -> float | None:
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for exp in sorted(self.buckets):
            in_bucket = self.buckets[exp]
            if cumulative + in_bucket >= target:
                lower, upper = 2.0 ** (exp - 1), 2.0 ** exp
                fraction = (target - cumulative) / in_bucket
                estimate = lower + fraction * (upper - lower)
                # observed extremes are exact; never report outside them
                return max(self.min, min(self.max, estimate))
            cumulative += in_bucket
        return self.max

    def quantile(self, q: float) -> float | None:
        """A bucketed quantile estimate (None when empty).

        Exact to within one log2 bucket boundary: the true value and
        the estimate share a bucket, and the estimate is clamped to
        the observed ``[min, max]``.
        """
        with self._lock:
            return self._quantile_locked(q)

    def percentiles(self) -> dict:
        """p50/p95/p99 in one consistent snapshot."""
        with self._lock:
            return {
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
            }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ascending, for exposition."""
        with self._lock:
            pairs = []
            cumulative = 0
            for exp in sorted(self.buckets):
                cumulative += self.buckets[exp]
                pairs.append((2.0 ** exp, cumulative))
            return pairs

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "mean": self.mean,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
            }


class MetricsRegistry:
    """Named metrics plus a per-query log, dumpable as JSON or text.

    ``query_log_capacity`` bounds the per-query log as a ring: a
    long-lived serving session appends an entry per query from every
    worker, so the log keeps the most recent N entries and counts the
    overflow in ``query_log_dropped``.
    """

    def __init__(self, query_log_capacity: int = 10_000):
        if query_log_capacity < 1:
            raise ValueError("query_log_capacity must be positive")
        # guards get-or-create; each metric carries its own update lock
        # (metrics are recorded per query, not per kernel, so the
        # contention cost is negligible)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.query_log: list[dict] = []
        self.query_log_capacity = query_log_capacity
        self.query_log_dropped = 0

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
        return metric

    def record_query(self, **entry) -> None:
        """Append one query's summary (sql, path, predicted/actual ms, ...).

        The log is a bounded ring: past capacity the oldest entries
        are dropped (and counted), never the newest.
        """
        with self._lock:
            self.query_log.append(entry)
            overflow = len(self.query_log) - self.query_log_capacity
            if overflow > 0:
                del self.query_log[:overflow]
                self.query_log_dropped += overflow

    def _snapshot(self):
        """Consistent copies of the metric maps (and the query log)."""
        with self._lock:
            return (
                dict(self._counters),
                dict(self._gauges),
                dict(self._histograms),
                list(self.query_log),
            )

    def cost_error_summary(self, start: int = 0, stop: int | None = None) -> dict:
        """Aggregate cost-model prediction error over a query-log slice.

        The calibration smoke compares the slice before recalibration
        against the slice after it; ``predicted`` counts the queries
        that actually carried a prediction (auto-mode runs).
        """
        with self._lock:
            entries = self.query_log[start:stop]
        errors = [
            abs(e["predicted_error_pct"])
            for e in entries
            if e.get("predicted_error_pct") is not None
        ]
        return {
            "queries": len(entries),
            "predicted": len(errors),
            "mean_abs_error_pct": (
                sum(errors) / len(errors) if errors else None
            ),
            "max_abs_error_pct": max(errors) if errors else None,
        }

    def dump_prefix(self, prefix: str) -> dict:
        """Counters/gauges/histograms under one name prefix.

        The serving stack namespaces per-tenant metrics as
        ``qos.tenant.<name>.*``; the network server's STATS frame and
        the QoS tests read them back through this filter.
        """
        counters, gauges, histograms, _ = self._snapshot()
        return {
            "counters": {
                n: c.value for n, c in sorted(counters.items())
                if n.startswith(prefix)
            },
            "gauges": {
                n: g.value for n, g in sorted(gauges.items())
                if n.startswith(prefix)
            },
            "histograms": {
                n: h.to_dict() for n, h in sorted(histograms.items())
                if n.startswith(prefix)
            },
        }

    def to_dict(self) -> dict:
        counters, gauges, histograms, queries = self._snapshot()
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(histograms.items())
            },
            "queries": queries,
            "queries_dropped": self.query_log_dropped,
        }

    def render_text(self) -> str:
        """An aligned plain-text dump for terminals and logs."""
        counters, gauges, histograms, queries = self._snapshot()
        lines = ["metrics:"]
        for name, counter in sorted(counters.items()):
            lines.append(f"  {name:<40s} {counter.value:>14g}")
        for name, gauge in sorted(gauges.items()):
            if gauge.value is not None:
                lines.append(f"  {name:<40s} {gauge.value:>14g}")
        for name, hist in sorted(histograms.items()):
            if hist.count == 0:
                # an empty histogram has no extremes: min=0/max=0 would
                # be indistinguishable from a real observed 0.0
                lines.append(f"  {name:<40s} n=0")
                continue
            lines.append(
                f"  {name:<40s} n={hist.count} mean={hist.mean:.4g}"
                f" min={hist.min:.4g} max={hist.max:.4g}"
            )
        if queries:
            lines.append("queries:")
            for entry in queries:
                predicted = entry.get("predicted_ms")
                predicted_text = (
                    f" predicted={predicted:.3f}ms" if predicted is not None else ""
                )
                lines.append(
                    f"  [{entry.get('path', '?'):<8s}]"
                    f" {entry.get('total_ms', 0.0):.3f}ms"
                    f"{predicted_text} rows={entry.get('rows')}"
                    f" :: {entry.get('sql', '')}"
                )
        return "\n".join(lines)

    # -- Prometheus text exposition ----------------------------------------

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """The registry in Prometheus text exposition format 0.0.4.

        Metric names are sanitized (dots become underscores) under one
        ``prefix``; the serving stack's ``qos.tenant.<name>.*``
        namespace is folded into a ``tenant`` label, so one family —
        say ``repro_qos_tenant_wall_run_ms`` — carries every tenant's
        series.  Histograms get the conventional cumulative
        ``_bucket`` (log2 ``le`` boundaries plus ``+Inf``), ``_sum``
        and ``_count`` series; counters get the ``_total`` suffix.
        """
        counters, gauges, histograms, _ = self._snapshot()
        families: dict[str, dict] = {}

        def family(raw: str, kind: str, suffix: str = "") -> dict:
            name, labels = _prometheus_split(raw, prefix)
            entry = families.setdefault(
                name + suffix, {"type": kind, "series": []},
            )
            return {"labels": labels, "series": entry["series"]}

        for raw, counter in counters.items():
            slot = family(raw, "counter", "_total")
            slot["series"].append((slot["labels"], counter.value))
        for raw, gauge in gauges.items():
            if gauge.value is None:
                continue
            slot = family(raw, "gauge")
            slot["series"].append((slot["labels"], gauge.value))
        histogram_data = []
        for raw, hist in histograms.items():
            name, labels = _prometheus_split(raw, prefix)
            histogram_data.append(
                (name, labels, hist.cumulative_buckets(),
                 hist.count, hist.total)
            )

        lines: list[str] = []
        for fname in sorted(families):
            entry = families[fname]
            lines.append(f"# TYPE {fname} {entry['type']}")
            for labels, value in sorted(entry["series"]):
                lines.append(
                    f"{fname}{_prometheus_labels(labels)} {_prometheus_num(value)}"
                )
        seen_hist_types: set[str] = set()
        for name, labels, buckets, count, total in sorted(histogram_data):
            if name not in seen_hist_types:
                seen_hist_types.add(name)
                lines.append(f"# TYPE {name} histogram")
            for le, cumulative in buckets:
                lines.append(
                    f"{name}_bucket"
                    f"{_prometheus_labels(labels + [('le', _prometheus_num(le))])}"
                    f" {cumulative}"
                )
            lines.append(
                f"{name}_bucket"
                f"{_prometheus_labels(labels + [('le', '+Inf')])} {count}"
            )
            lines.append(
                f"{name}_sum{_prometheus_labels(labels)} {_prometheus_num(total)}"
            )
            lines.append(f"{name}_count{_prometheus_labels(labels)} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_json(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, default=_json_default)
            handle.write("\n")


_TENANT_RE = re.compile(r"^qos\.tenant\.([^.]+)\.(.+)$")
_PROM_SAFE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_split(raw: str, prefix: str) -> tuple[str, list]:
    """``qos.tenant.<t>.rest`` -> (family name, [('tenant', t)])."""
    match = _TENANT_RE.match(raw)
    if match:
        tenant, rest = match.groups()
        return prefix + _PROM_SAFE_RE.sub("_", "qos.tenant." + rest), [
            ("tenant", tenant)
        ]
    return prefix + _PROM_SAFE_RE.sub("_", raw), []


def _prometheus_labels(labels) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{key}="{_prometheus_escape(str(value))}"'
        for key, value in sorted(labels)
    )
    return "{" + rendered + "}"


def _prometheus_escape(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _prometheus_num(value) -> str:
    """A float in the shortest exact form Prometheus parses back."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def _json_default(value):
    """Last-resort JSON coercion (numpy scalars and friends)."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)
