"""A small metrics registry: counters, gauges, histograms, query log.

The registry is engine-agnostic state the executor fills in after each
run: cache hit ratios, pool reuse vs. raw mallocs, index probes, PCIe
transfer fractions, and the cost model's predicted-vs-actual error per
query (the Figure 15/16 accuracy data, recomputable from any session's
dump).

The registry is shared by every worker of a concurrent serving engine,
so each metric's read-modify-write update (``value += amount``, the
histogram's four fields) happens under the metric's own lock, and
get-or-create goes through the registry lock — an unsynchronized
``inc`` from two threads loses updates at the bytecode level even
under the GIL.
"""

from __future__ import annotations

import json
import math
import threading


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock | None = None):
        self.name = name
        self.value = 0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock | None = None):
        self.name = name
        self.value: float | None = None
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Streaming count/sum/min/max over observed values."""

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.Lock | None = None):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Named metrics plus a per-query log, dumpable as JSON or text."""

    def __init__(self):
        # guards get-or-create; each metric carries its own update lock
        # (metrics are recorded per query, not per kernel, so the
        # contention cost is negligible)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.query_log: list[dict] = []

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
        return metric

    def record_query(self, **entry) -> None:
        """Append one query's summary (sql, path, predicted/actual ms, ...)."""
        self.query_log.append(entry)

    def cost_error_summary(self, start: int = 0, stop: int | None = None) -> dict:
        """Aggregate cost-model prediction error over a query-log slice.

        The calibration smoke compares the slice before recalibration
        against the slice after it; ``predicted`` counts the queries
        that actually carried a prediction (auto-mode runs).
        """
        entries = self.query_log[start:stop]
        errors = [
            abs(e["predicted_error_pct"])
            for e in entries
            if e.get("predicted_error_pct") is not None
        ]
        return {
            "queries": len(entries),
            "predicted": len(errors),
            "mean_abs_error_pct": (
                sum(errors) / len(errors) if errors else None
            ),
            "max_abs_error_pct": max(errors) if errors else None,
        }

    def dump_prefix(self, prefix: str) -> dict:
        """Counters/gauges/histograms under one name prefix.

        The serving stack namespaces per-tenant metrics as
        ``qos.tenant.<name>.*``; the network server's STATS frame and
        the QoS tests read them back through this filter.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                n: c.value for n, c in sorted(counters.items())
                if n.startswith(prefix)
            },
            "gauges": {
                n: g.value for n, g in sorted(gauges.items())
                if n.startswith(prefix)
            },
            "histograms": {
                n: h.to_dict() for n, h in sorted(histograms.items())
                if n.startswith(prefix)
            },
        }

    def to_dict(self) -> dict:
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
            "queries": list(self.query_log),
        }

    def render_text(self) -> str:
        """An aligned plain-text dump for terminals and logs."""
        lines = ["metrics:"]
        for name, counter in sorted(self._counters.items()):
            lines.append(f"  {name:<40s} {counter.value:>14g}")
        for name, gauge in sorted(self._gauges.items()):
            if gauge.value is not None:
                lines.append(f"  {name:<40s} {gauge.value:>14g}")
        for name, hist in sorted(self._histograms.items()):
            lines.append(
                f"  {name:<40s} n={hist.count} mean={hist.mean:.4g}"
                f" min={hist.min if hist.count else 0:.4g}"
                f" max={hist.max if hist.count else 0:.4g}"
            )
        if self.query_log:
            lines.append("queries:")
            for entry in self.query_log:
                predicted = entry.get("predicted_ms")
                predicted_text = (
                    f" predicted={predicted:.3f}ms" if predicted is not None else ""
                )
                lines.append(
                    f"  [{entry.get('path', '?'):<8s}]"
                    f" {entry.get('total_ms', 0.0):.3f}ms"
                    f"{predicted_text} rows={entry.get('rows')}"
                    f" :: {entry.get('sql', '')}"
                )
        return "\n".join(lines)

    def write_json(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, default=_json_default)
            handle.write("\n")


def _json_default(value):
    """Last-resort JSON coercion (numpy scalars and friends)."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)
