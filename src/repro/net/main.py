"""``repro net`` — the network server and its client commands.

Usage:

    python -m repro.cli net serve --scale 0.1 --concurrency 4 \
        --policy fair --port 7341 --demo-tenants \
        --flight-recorder flight.json
    python -m repro.cli net run --port 7341 --token alpha-token \
        --paper-mix --scale 0.1 --verify-solo
    python -m repro.cli net run --port 7341 --token local -q "SELECT ..." \
        --trace-dir traces/
    python -m repro.cli net stats --port 7341 --token alpha-token \
        --out tenant-stats.json
    python -m repro.cli net stats --port 7341 --token local --prometheus
    python -m repro.cli net flight-recorder --port 7341 --token local \
        --out flight.json

``serve`` owns the engine: it builds a TPC-H catalog, an
:class:`~repro.serve.EngineSession` with a metrics registry, an
:class:`~repro.serve.AsyncEngine` worker pool under the selected
scheduling policy, and listens until SIGINT/SIGTERM — then drains,
prints per-tenant accounting, and exits 0.  ``--tenants FILE`` loads a
JSON tenant roster (name/token/priority/weight/quota/max_in_flight);
``--demo-tenants`` uses the built-in alpha/beta pair; the default is a
single unrestricted tenant with token ``local``.

``run`` is a thin client: one connection, the statements you ask for,
a per-query line each, and ``--verify-solo`` re-runs each distinct
statement on a local fresh engine at ``--scale`` and checks the rows
that travelled through the protocol are bit-identical.
``--trace-dir`` requests a distributed trace for every query and
writes the validated combined Chrome trace (plus the raw payloads)
into the directory.  ``stats --prometheus`` scrapes the METRICS
opcode; ``flight-recorder`` dumps the server's forensic ring.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from ..engine import EngineOptions
from ..errors import ReproError
from ..gpu import DeviceSpec
from ..obs.telemetry import SLObjective
from ..serve.concurrent import AsyncEngine
from ..serve.plancache import normalize_sql
from ..serve.scheduler import paper_mix_statements
from ..serve.session import EngineSession
from ..tpch import generate_tpch
from .client import NetClientError, ReproNetClient
from .protocol import decode_rows, encode_rows
from .qos import TenantRegistry, demo_registry, single_tenant_registry
from .server import NetServer


def _add_connection_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="server address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, required=True,
                        help="server port")
    parser.add_argument("--token", default="local",
                        help="tenant auth token (default 'local')")


def build_net_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli net",
        description="Network-facing query server with multi-tenant QoS.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the socket server")
    serve.add_argument("--scale", type=float, default=1.0,
                       help="TPC-H micro scale factor (default 1)")
    serve.add_argument("--concurrency", type=int, default=2, metavar="N",
                       help="engine worker threads (default 2)")
    serve.add_argument("--policy", choices=AsyncEngine.POLICIES,
                       default="priority",
                       help="scheduling policy (default priority-FIFO)")
    serve.add_argument("--queue-capacity", type=int, default=64,
                       help="bounded submission queue depth (default 64)")
    serve.add_argument("--mode", choices=("auto", "nested", "unnested"),
                       default="auto", help="execution mode")
    serve.add_argument("--device", choices=("v100", "gtx1080", "a100"),
                       default="v100", help="simulated device preset")
    serve.add_argument("--shards", type=int, default=1,
                       help="modelled devices in the group (default 1)")
    serve.add_argument("--interconnect",
                       choices=("pcie", "nvlink", "nvswitch"),
                       default="pcie",
                       help="peer fabric between shards (default pcie)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default: ephemeral, printed)")
    tenants = serve.add_mutually_exclusive_group()
    tenants.add_argument("--tenants", metavar="FILE",
                         help="JSON tenant roster")
    tenants.add_argument("--demo-tenants", action="store_true",
                         help="built-in alpha/beta tenant pair")
    serve.add_argument("--slo-ms", type=float, default=1000.0,
                       help="default per-tenant latency objective in ms "
                            "(tenants may override via slo_ms; default 1000)")
    serve.add_argument("--slo-target", type=float, default=0.99,
                       help="fraction of queries that must meet the "
                            "objective (default 0.99)")
    serve.add_argument("--flight-recorder", metavar="PATH", default=None,
                       help="dump the flight-recorder ring to PATH as JSON "
                            "on shutdown")
    serve.add_argument("--flight-recorder-capacity", type=int, default=1024,
                       help="flight-recorder ring size (default 1024)")
    from ..cli import add_fusion_arguments

    add_fusion_arguments(serve)

    run = sub.add_parser("run", help="drive a server as one tenant")
    _add_connection_args(run)
    source = run.add_mutually_exclusive_group(required=True)
    source.add_argument("-q", "--query", help="run one statement")
    source.add_argument("--paper-mix", action="store_true",
                        help="run the 10-query paper mix")
    run.add_argument("--repeat", type=int, default=1,
                     help="repeat the workload N times (default 1)")
    run.add_argument("--deadline", type=float, default=None,
                     help="per-query deadline in seconds")
    run.add_argument("--fetch-size", type=int, default=None,
                     help="rows per RESULT/ROWS page")
    run.add_argument("--scale", type=float, default=1.0,
                     help="scale for --verify-solo's local engine")
    run.add_argument("--mode", choices=("auto", "nested", "unnested"),
                     default="auto", help="mode for --verify-solo")
    run.add_argument("--verify-solo", action="store_true",
                     help="check rows are bit-identical to a local solo run")
    run.add_argument("--trace-dir", metavar="DIR", default=None,
                     help="trace every query; write the combined Chrome "
                          "trace and raw payloads into DIR")
    run.add_argument("-v", "--verbose", action="store_true",
                     help="print a line per query")

    stats = sub.add_parser("stats", help="fetch the server's STATS frame")
    _add_connection_args(stats)
    stats.add_argument("--out", metavar="PATH",
                       help="also write the stats JSON to a file")
    stats.add_argument("--prometheus", action="store_true",
                       help="scrape the METRICS opcode and print the "
                            "Prometheus text exposition instead")

    flight = sub.add_parser(
        "flight-recorder", help="dump the server's flight-recorder ring",
    )
    _add_connection_args(flight)
    flight.add_argument("--limit", type=int, default=None,
                        help="only the newest N records")
    flight.add_argument("--out", metavar="PATH",
                        help="also write the dump JSON to a file")
    return parser


def _load_registry(args) -> TenantRegistry:
    if args.tenants:
        return TenantRegistry.from_json_file(args.tenants)
    if args.demo_tenants:
        return demo_registry()
    return single_tenant_registry()


def _serve(args) -> int:
    import asyncio

    from ..obs import MetricsRegistry

    try:
        registry = _load_registry(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    device = {
        "v100": DeviceSpec.v100,
        "gtx1080": DeviceSpec.gtx1080,
        "a100": DeviceSpec.a100,
    }[args.device]()
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    from ..cli import fusion_mode

    session = EngineSession(
        generate_tpch(args.scale), device=device,
        options=EngineOptions(fusion=fusion_mode(args)),
        mode=args.mode, metrics=MetricsRegistry(),
        shards=args.shards, interconnect=args.interconnect,
    )
    try:
        slo_default = SLObjective(args.slo_ms, args.slo_target)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    engine = AsyncEngine(
        session,
        workers=args.concurrency,
        queue_capacity=args.queue_capacity,
        policy=args.policy,
        tenant_budgets=registry.budgets(session.device_capacity_bytes),
        tenant_weights=registry.weights(),
        slo_objectives=registry.slo_objectives(),
        slo_default=slo_default,
        flight_recorder_capacity=args.flight_recorder_capacity,
    )
    server = NetServer(engine, registry, host=args.host, port=args.port)

    async def main() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stopping.set)
        print(
            f"listening on {server.host}:{server.port} "
            f"(policy {engine.policy}, {engine.workers} workers, "
            f"tenants: {', '.join(sorted(registry.specs))})",
            flush=True,
        )
        await stopping.wait()
        print("draining...", flush=True)
        await server.drain(timeout=60.0)
        await server.stop()

    try:
        asyncio.run(main())
    finally:
        engine.shutdown(drain=False, timeout=10.0)
        tenants = engine.tenant_stats()
        if args.flight_recorder:
            engine.flight_recorder.write_json(args.flight_recorder)
            print(
                f"flight recorder: {len(engine.flight_recorder)} records "
                f"({engine.flight_recorder.dropped} dropped) "
                f"-> {args.flight_recorder}",
                flush=True,
            )
        session.close()
    print(json.dumps({
        "tenants": tenants,
        "flight_recorder": {
            "recorded": engine.flight_recorder.recorded,
            "dropped": engine.flight_recorder.dropped,
        },
    }, indent=2))
    return 0


def _verify_solo(statements, results, args) -> list[str]:
    """Protocol rows vs a local fresh-engine run, per distinct statement.

    Both sides pass through the wire codec, so a mismatch is a real
    row difference, not a serialisation artefact.
    """
    from ..core import NestGPU

    device = DeviceSpec.v100()
    mismatches: list[str] = []
    seen: dict[str, list] = {}
    for sql, result in zip(statements, results):
        if result is None:
            continue
        key = normalize_sql(sql)
        if key not in seen:
            solo = NestGPU(
                generate_tpch(args.scale), device=device,
                options=EngineOptions(), mode=args.mode,
            ).execute(sql)
            seen[key] = decode_rows(encode_rows(solo.rows))
        if repr(seen[key]) != repr(result.rows):
            mismatches.append(f"{key[:60]}: rows differ from solo run")
    return mismatches


def _run(args) -> int:
    statements = (
        paper_mix_statements() if args.paper_mix else [args.query]
    ) * max(1, args.repeat)
    try:
        client = ReproNetClient(
            args.host, args.port, token=args.token,
            fetch_size=args.fetch_size,
        )
    except OSError as exc:
        print(f"error: cannot connect: {exc}", file=sys.stderr)
        return 2
    results = []
    failures = 0
    with client:
        for seq, sql in enumerate(statements):
            try:
                result = client.execute(
                    sql, deadline_s=args.deadline,
                    trace=bool(args.trace_dir),
                )
            except NetClientError as exc:
                results.append(None)
                failures += 1
                print(f"  [{seq:2d}] error {exc}", file=sys.stderr)
                continue
            results.append(result)
            if args.verbose:
                print(
                    f"  [{seq:2d}] {result.num_rows:5d} rows "
                    f"{result.stats.get('wall_run_ms', 0.0):8.2f} ms wall "
                    f"{'hit ' if result.plan_cache_hit else 'miss'} "
                    f"{normalize_sql(sql)[:50]}"
                )
        done = [r for r in results if r is not None]
        total_rows = sum(r.num_rows for r in done)
        print(
            f"tenant {client.tenant}: {len(done)}/{len(statements)} queries, "
            f"{total_rows} rows ({client.policy} policy)"
        )
        traces = client.traces() if args.trace_dir else []
    if args.trace_dir:
        status = _write_traces(args.trace_dir, client.tenant, traces)
        if status:
            return status
    if args.verify_solo:
        mismatches = _verify_solo(statements, results, args)
        if mismatches:
            print("solo bit-identity FAILED:", file=sys.stderr)
            for line in mismatches:
                print(f"  {line}", file=sys.stderr)
            return 1
        print("solo bit-identity: OK")
    return 1 if failures else 0


def _write_traces(trace_dir, tenant, traces) -> int:
    """Validate + write the distributed trace (0 on success)."""
    import os

    from ..obs.export import write_trace_document
    from ..obs.telemetry import distributed_chrome_trace, validate_chrome_trace

    os.makedirs(trace_dir, exist_ok=True)
    if not traces:
        print("no traces returned (all queries failed?)", file=sys.stderr)
        return 1
    payload_path = os.path.join(trace_dir, f"{tenant}-trace-payloads.json")
    with open(payload_path, "w") as handle:
        json.dump(traces, handle, indent=2)
    document = distributed_chrome_trace(traces)
    try:
        events = validate_chrome_trace(document)
    except ValueError as exc:
        print(f"distributed trace INVALID: {exc}", file=sys.stderr)
        return 1
    trace_path = os.path.join(trace_dir, f"{tenant}-distributed-trace.json")
    write_trace_document(trace_path, document)
    print(
        f"distributed trace: {len(traces)} queries, {events} events "
        f"-> {trace_path}"
    )
    return 0


def _stats(args) -> int:
    try:
        with ReproNetClient(args.host, args.port, token=args.token) as client:
            if args.prometheus:
                payload = client.metrics()
                text = payload.get("text", "")
            else:
                stats = client.stats()
                text = json.dumps(stats, indent=2, sort_keys=True)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
    return 0


def _flight(args) -> int:
    try:
        with ReproNetClient(args.host, args.port, token=args.token) as client:
            dump = client.flight_recorder(limit=args.limit)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    text = json.dumps(dump, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    return 0


def net_main(argv: list[str] | None = None) -> int:
    args = build_net_parser().parse_args(argv)
    if args.command == "serve":
        return _serve(args)
    if args.command == "run":
        return _run(args)
    if args.command == "flight-recorder":
        return _flight(args)
    return _stats(args)
