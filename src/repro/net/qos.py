"""Tenant specs: auth tokens mapped to QoS budgets and weights.

A :class:`TenantSpec` is the static description of one tenant — its
auth ``token``, scheduling ``priority`` (priority-FIFO mode and
within-tenant order), fair-share ``weight``, and admission limits
(``quota_fraction``/``quota_bytes`` of modelled HBM, plus
``max_in_flight``).  The :class:`TenantRegistry` authenticates HELLO
tokens and translates the specs into the
:class:`~repro.serve.concurrent.TenantBudget` map and weight table
the :class:`~repro.serve.AsyncEngine` enforces.
"""

from __future__ import annotations

import json

from ..errors import ReproError
from ..serve.concurrent import TenantBudget


class TenantConfigError(ReproError):
    """The tenant configuration is malformed."""


class TenantSpec:
    """One tenant's identity and QoS envelope."""

    __slots__ = (
        "name", "token", "priority", "weight",
        "quota_bytes", "quota_fraction", "max_in_flight",
        "slo_ms", "slo_target",
    )

    def __init__(
        self,
        name: str,
        token: str,
        priority: int = 0,
        weight: float = 1.0,
        quota_bytes: int | None = None,
        quota_fraction: float | None = None,
        max_in_flight: int | None = None,
        slo_ms: float | None = None,
        slo_target: float = 0.99,
    ):
        if not name:
            raise TenantConfigError("tenant name must be non-empty")
        if not token:
            raise TenantConfigError(f"tenant {name!r} has an empty token")
        if weight <= 0:
            raise TenantConfigError(f"tenant {name!r} weight must be > 0")
        if quota_bytes is not None and quota_fraction is not None:
            raise TenantConfigError(
                f"tenant {name!r}: quota_bytes and quota_fraction are exclusive"
            )
        if quota_fraction is not None and not 0 < quota_fraction <= 1:
            raise TenantConfigError(
                f"tenant {name!r}: quota_fraction must be in (0, 1]"
            )
        if slo_ms is not None and slo_ms <= 0:
            raise TenantConfigError(
                f"tenant {name!r}: slo_ms must be positive"
            )
        if not 0 < slo_target < 1:
            raise TenantConfigError(
                f"tenant {name!r}: slo_target must be in (0, 1)"
            )
        self.name = name
        self.token = token
        self.priority = int(priority)
        self.weight = float(weight)
        self.quota_bytes = quota_bytes
        self.quota_fraction = quota_fraction
        self.max_in_flight = max_in_flight
        self.slo_ms = slo_ms
        self.slo_target = float(slo_target)

    def budget(self, capacity_bytes: int) -> TenantBudget:
        """The admission budget against a concrete device capacity."""
        quota = self.quota_bytes
        if quota is None and self.quota_fraction is not None:
            quota = max(1, int(capacity_bytes * self.quota_fraction))
        return TenantBudget(
            quota_bytes=quota, max_in_flight=self.max_in_flight,
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "priority": self.priority,
            "weight": self.weight,
            "quota_bytes": self.quota_bytes,
            "quota_fraction": self.quota_fraction,
            "max_in_flight": self.max_in_flight,
            "slo_ms": self.slo_ms,
            "slo_target": self.slo_target,
        }


class TenantRegistry:
    """The tenant roster: token authentication + budget/weight tables."""

    def __init__(self, specs):
        self.specs: dict[str, TenantSpec] = {}
        self._by_token: dict[str, TenantSpec] = {}
        for spec in specs:
            if spec.name in self.specs:
                raise TenantConfigError(f"duplicate tenant name {spec.name!r}")
            if spec.token in self._by_token:
                raise TenantConfigError(
                    f"tenant {spec.name!r} reuses another tenant's token"
                )
            self.specs[spec.name] = spec
            self._by_token[spec.token] = spec
        if not self.specs:
            raise TenantConfigError("tenant registry is empty")

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs.values())

    def authenticate(self, token: str) -> TenantSpec | None:
        """The spec for a HELLO token, or None (never raises)."""
        return self._by_token.get(token)

    def budgets(self, capacity_bytes: int) -> dict[str, TenantBudget]:
        return {
            spec.name: spec.budget(capacity_bytes) for spec in self
        }

    def weights(self) -> dict[str, float]:
        return {spec.name: spec.weight for spec in self}

    def slo_objectives(self):
        """Per-tenant latency objectives for tenants that declare one.

        Returns ``{name: SLObjective}`` (tenants without ``slo_ms``
        fall through to the engine's default objective).
        """
        from ..obs.telemetry import SLObjective

        return {
            spec.name: SLObjective(spec.slo_ms, spec.slo_target)
            for spec in self
            if spec.slo_ms is not None
        }

    @classmethod
    def from_config(cls, config) -> "TenantRegistry":
        """A registry from parsed JSON: a list of tenant objects."""
        if not isinstance(config, list):
            raise TenantConfigError(
                "tenant config must be a JSON list of tenant objects"
            )
        specs = []
        for entry in config:
            if not isinstance(entry, dict):
                raise TenantConfigError(
                    f"tenant entry must be an object, got {entry!r}"
                )
            unknown = set(entry) - {
                "name", "token", "priority", "weight",
                "quota_bytes", "quota_fraction", "max_in_flight",
                "slo_ms", "slo_target",
            }
            if unknown:
                raise TenantConfigError(
                    f"unknown tenant fields: {sorted(unknown)}"
                )
            try:
                specs.append(TenantSpec(**entry))
            except TypeError as exc:
                raise TenantConfigError(str(exc)) from None
        return cls(specs)

    @classmethod
    def from_json_file(cls, path) -> "TenantRegistry":
        with open(path) as handle:
            try:
                config = json.load(handle)
            except json.JSONDecodeError as exc:
                raise TenantConfigError(
                    f"cannot parse tenant config {path}: {exc}"
                ) from None
        return cls.from_config(config)


#: The demo/CI roster: a high-priority heavy tenant and a low-priority
#: light one — the pair the starvation tests contrast across policies.
def demo_registry() -> TenantRegistry:
    return TenantRegistry([
        TenantSpec(
            "alpha", token="alpha-token", priority=10, weight=3.0,
            quota_fraction=0.8, max_in_flight=8,
            slo_ms=250.0, slo_target=0.95,
        ),
        TenantSpec(
            "beta", token="beta-token", priority=0, weight=1.0,
            quota_fraction=0.5, max_in_flight=4,
            slo_ms=1000.0, slo_target=0.9,
        ),
    ])


def single_tenant_registry(
    token: str = "local", name: str = "default",
) -> TenantRegistry:
    """One unrestricted tenant — the no-QoS default for `net serve`."""
    return TenantRegistry([TenantSpec(name, token=token)])
