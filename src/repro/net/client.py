"""The blocking client library for the repro network protocol.

:class:`ReproNetClient` owns one socket.  RESULT/ERROR frames arrive
asynchronously and are tagged with the client-chosen ``query_id``, so
the client routes: frames for queries other than the one currently
awaited are parked in an inbox and delivered when asked.  That gives
tests and callers a natural pipelined API::

    with ReproNetClient(host, port, token="alpha-token") as client:
        result = client.execute("SELECT ...")        # submit + wait
        qid = client.execute("SELECT ...", wait=False)
        client.cancel(qid)                           # race the engine
        client.wait(qid)                             # -> NetClientError

``execute`` transparently FETCHes every page; ``NetResult.rows`` are
tuples with dates/floats/ints/strings restored bit-identically.
"""

from __future__ import annotations

import itertools
import socket

from ..errors import ReproError
from .protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    Opcode,
    PROTOCOL_VERSION,
    decode_rows,
    encode_frame,
)


class NetClientError(ReproError):
    """A structured ERROR frame, surfaced as an exception."""

    def __init__(self, payload: dict):
        self.code = payload.get("code", "unknown")
        self.retry_after_s = payload.get("retry_after_s")
        self.query_id = payload.get("query_id")
        super().__init__(
            f"[{self.code}] {payload.get('message', 'unknown error')}"
        )
        self.payload = payload


class ProtocolError(ReproError):
    """The server broke the frame conversation."""


class NetResult:
    """One query's rows and server-side stats."""

    def __init__(self, columns: list[str], rows: list[tuple], stats: dict):
        self.columns = columns
        self.rows = rows
        self.stats = stats

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def total_ns(self) -> float:
        return self.stats.get("total_ns", 0.0)

    @property
    def plan_cache_hit(self) -> bool:
        return bool(self.stats.get("plan_cache_hit"))


class ReproNetClient:
    """A connection to a :class:`~repro.net.server.NetServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        token: str,
        timeout_s: float = 60.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        fetch_size: int | None = None,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._decoder = FrameDecoder(max_frame)
        self._frames: list[tuple[int, dict]] = []  # decoded, undelivered
        self._inbox: list[tuple[int, dict]] = []   # out-of-band query frames
        self._traces: dict[int, dict] = {}         # query_id -> trace payload
        self._query_ids = itertools.count(1)
        self.fetch_size = fetch_size
        self.closed = False
        self.send_frame(Opcode.HELLO, {
            "token": token, "version": PROTOCOL_VERSION,
        })
        _, hello = self._recv_reply(Opcode.HELLO_OK)
        self.tenant = hello.get("tenant")
        self.policy = hello.get("policy")
        self.server_info = hello

    # -- framing ---------------------------------------------------------

    def send_frame(self, opcode: int, payload: dict | None = None) -> None:
        self._sock.sendall(encode_frame(opcode, payload))

    def recv_frame(self) -> tuple[int, dict]:
        """The next frame off the wire (undelivered ones first)."""
        while not self._frames:
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            self._frames.extend(self._decoder.feed(data))
        return self._frames.pop(0)

    _QUERY_OPCODES = (Opcode.RESULT, Opcode.ROWS, Opcode.CANCELLED)

    def _recv_reply(self, expected: int) -> tuple[int, dict]:
        """The next connection-sequential reply, parking query frames."""
        while True:
            opcode, payload = self.recv_frame()
            if opcode == expected:
                return opcode, payload
            if opcode == Opcode.ERROR and "query_id" not in payload:
                raise NetClientError(payload)
            if opcode in self._QUERY_OPCODES or (
                opcode == Opcode.ERROR and "query_id" in payload
            ):
                self._inbox.append((opcode, payload))
                continue
            raise ProtocolError(
                f"expected opcode {expected}, got {opcode}: {payload}"
            )

    def _recv_for_query(
        self, query_id: int, opcodes, match_error: bool = True,
    ) -> tuple[int, dict]:
        """The next frame addressed to ``query_id`` (inbox first).

        ``match_error=False`` parks ERROR frames for the query instead
        of returning them — CANCEL's ack is always CANCELLED, so an
        interleaved EXECUTE failure must not satisfy the cancel wait.
        """
        def matches(opcode, payload):
            if payload.get("query_id") != query_id:
                return False
            return opcode in opcodes or (
                match_error and opcode == Opcode.ERROR
            )

        for i, (opcode, payload) in enumerate(self._inbox):
            if matches(opcode, payload):
                del self._inbox[i]
                return opcode, payload
        while True:
            opcode, payload = self.recv_frame()
            if matches(opcode, payload):
                return opcode, payload
            if opcode == Opcode.ERROR and "query_id" not in payload:
                raise NetClientError(payload)
            if opcode in self._QUERY_OPCODES or opcode == Opcode.ERROR:
                self._inbox.append((opcode, payload))
                continue
            raise ProtocolError(
                f"unexpected opcode {opcode} while waiting on "
                f"query {query_id}: {payload}"
            )

    # -- the statement API -----------------------------------------------

    def prepare(self, sql: str, mode: str | None = None) -> int:
        """Server-side prepared statement; returns its stmt_id."""
        payload = {"sql": sql}
        if mode:
            payload["mode"] = mode
        self.send_frame(Opcode.PREPARE, payload)
        _, prepared = self._recv_reply(Opcode.PREPARED)
        return prepared["stmt_id"]

    def execute(
        self,
        sql: str | None = None,
        stmt_id: int | None = None,
        params: tuple = (),
        mode: str | None = None,
        deadline_s: float | None = None,
        fetch_size: int | None = None,
        wait: bool = True,
        trace: bool = False,
    ):
        """Submit a query; returns a :class:`NetResult` (or, with
        ``wait=False``, the query_id to :meth:`wait` on later).

        ``trace=True`` asks the server to trace this query; the
        returned span tree is kept per query_id — read it back with
        :meth:`trace`.

        Raises:
            NetClientError: a structured ERROR frame — backpressure
                (``retry_after_s`` set), admission rejection, deadline
                expiry, cancellation, or a query error.
        """
        if (sql is None) == (stmt_id is None):
            raise ValueError("pass exactly one of sql / stmt_id")
        query_id = next(self._query_ids)
        payload = {"query_id": query_id}
        if sql is not None:
            payload["sql"] = sql
        else:
            payload["stmt_id"] = stmt_id
            payload["params"] = list(params)
        if mode:
            payload["mode"] = mode
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if fetch_size or self.fetch_size:
            payload["fetch_size"] = fetch_size or self.fetch_size
        if trace:
            payload["trace"] = True
        self.send_frame(Opcode.EXECUTE, payload)
        if not wait:
            return query_id
        return self.wait(query_id)

    def wait(self, query_id: int) -> NetResult:
        """Block until ``query_id`` resolves, fetching every page."""
        opcode, payload = self._recv_for_query(query_id, (Opcode.RESULT,))
        if opcode == Opcode.ERROR:
            raise NetClientError(payload)
        if "trace" in payload:
            self._traces[query_id] = payload["trace"]
        rows = list(payload["rows"])
        more = payload.get("more", False)
        while more:
            self.send_frame(Opcode.FETCH, {"query_id": query_id})
            opcode, page = self._recv_for_query(query_id, (Opcode.ROWS,))
            if opcode == Opcode.ERROR:
                raise NetClientError(page)
            rows.extend(page["rows"])
            more = page.get("more", False)
        assert len(rows) == payload["num_rows"]
        return NetResult(
            columns=payload["columns"],
            rows=decode_rows(rows),
            stats=payload.get("stats", {}),
        )

    def cancel(self, query_id: int) -> bool:
        """Best-effort server-side cancel; True if it will not run."""
        self.send_frame(Opcode.CANCEL, {"query_id": query_id})
        _, payload = self._recv_for_query(
            query_id, (Opcode.CANCELLED,), match_error=False,
        )
        return bool(payload.get("cancelled"))

    def trace(self, query_id: int | None = None) -> dict | None:
        """A traced query's distributed span payload.

        Without ``query_id``, the most recently received trace.  Feed
        one or many of these to
        :func:`repro.obs.telemetry.distributed_chrome_trace`.
        """
        if query_id is not None:
            return self._traces.get(query_id)
        if not self._traces:
            return None
        return self._traces[max(self._traces)]

    def traces(self) -> list[dict]:
        """Every trace payload received, in query_id order."""
        return [self._traces[qid] for qid in sorted(self._traces)]

    def stats(self) -> dict:
        """The server's STATS snapshot (per-tenant accounting etc.)."""
        self.send_frame(Opcode.STATS)
        _, payload = self._recv_reply(Opcode.STATS_REPLY)
        return payload

    def metrics(self) -> dict:
        """The Prometheus exposition: ``{content_type, text}``."""
        self.send_frame(Opcode.METRICS)
        _, payload = self._recv_reply(Opcode.METRICS_REPLY)
        return payload

    def flight_recorder(self, limit: int | None = None) -> dict:
        """The server's flight-recorder dump (newest-last records)."""
        payload = {} if limit is None else {"limit": limit}
        self.send_frame(Opcode.FLIGHT_RECORDER, payload)
        _, reply = self._recv_reply(Opcode.FLIGHT_RECORDER_REPLY)
        return reply

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Polite CLOSE/BYE then socket shutdown (idempotent)."""
        if self.closed:
            return
        self.closed = True
        try:
            self.send_frame(Opcode.CLOSE)
            self._recv_reply(Opcode.BYE)
        except (ConnectionError, OSError, ReproError):
            pass
        finally:
            self._sock.close()

    def kill(self) -> None:
        """Abrupt disconnect — the fault-injection tests' hammer."""
        self.closed = True
        self._sock.close()

    def __enter__(self) -> "ReproNetClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
