"""The network front door: framed protocol, asyncio server, client.

:mod:`repro.net.protocol` defines the length-prefixed frame codec and
opcode set; :mod:`repro.net.server` runs an asyncio socket server
bridging connections onto a :class:`~repro.serve.AsyncEngine`;
:mod:`repro.net.client` is the blocking client library used by tests,
the ``repro net run`` command and the bench harness;
:mod:`repro.net.qos` maps tenant auth tokens to QoS budgets.  See
``python -m repro.cli net serve`` / ``net run`` for the commands.
"""

from .client import NetClientError, NetResult, ReproNetClient
from .protocol import (
    ErrorCode,
    FrameDecoder,
    FrameError,
    Opcode,
    PROTOCOL_VERSION,
    decode_rows,
    encode_frame,
    encode_rows,
)
from .qos import TenantRegistry, TenantSpec, demo_registry
from .server import NetServer, ServerThread

__all__ = [
    "ErrorCode",
    "FrameDecoder",
    "FrameError",
    "NetClientError",
    "NetResult",
    "NetServer",
    "Opcode",
    "PROTOCOL_VERSION",
    "ReproNetClient",
    "ServerThread",
    "TenantRegistry",
    "TenantSpec",
    "decode_rows",
    "demo_registry",
    "encode_frame",
    "encode_rows",
]
