"""The wire protocol: length-prefixed frames with JSON payloads.

A frame is a 4-byte big-endian length ``N`` followed by ``N`` body
bytes; the first body byte is the opcode, the rest (optional) is a
UTF-8 JSON object.  ``N`` therefore is ``1 + len(payload)`` and must
satisfy ``1 <= N <= max_frame`` — a zero-length or oversized header is
a framing error and the connection is closed, since the stream can no
longer be trusted.

The conversation::

    client                          server
    HELLO {token}              ->
                               <-   HELLO_OK {tenant, policy, ...}
    PREPARE {sql}              ->
                               <-   PREPARED {stmt_id, num_params}
    EXECUTE {query_id, sql|stmt_id, params, ...}  ->
                               <-   RESULT {query_id, columns, rows,
                                            more, stats}   (async)
    FETCH {query_id}           ->
                               <-   ROWS {query_id, rows, more}
    CANCEL {query_id}          ->
                               <-   CANCELLED {query_id, cancelled}
    STATS {}                   ->
                               <-   STATS_REPLY {tenants, engine, ...}
    METRICS {}                 ->
                               <-   METRICS_REPLY {content_type, text}
    FLIGHT_RECORDER {limit?}   ->
                               <-   FLIGHT_RECORDER_REPLY {capacity,
                                            recorded, dropped, records}
    CLOSE {}                   ->
                               <-   BYE {}

An EXECUTE may set ``"trace": true``; its RESULT then carries a
``trace`` object — the query's distributed span tree (wall-clock
worker phases + modelled engine spans, correlated by query_id /
tenant / worker / stream) ready for
:func:`repro.obs.telemetry.distributed_chrome_trace`.  ERROR frames
that belong to a query carry its ``flight_record``.

``query_id`` is chosen by the client (unique per connection), so
CANCEL can race EXECUTE without a round trip.  RESULT and ERROR
frames for an EXECUTE arrive asynchronously — the server keeps
reading while queries run, which is what makes CANCEL and STATS work
mid-flight.  Structured ERROR frames carry a stable ``code`` (see
:class:`ErrorCode`), a human ``message``, the ``query_id`` when the
error belongs to one query, and ``retry_after_s`` on backpressure.

Values are JSON scalars except dates, which travel as
``{"__date__": "YYYY-MM-DD"}`` so row tuples round-trip bit-identical
(Python's JSON float codec is exact shortest-round-trip; NaN uses the
JSON superset literal both ends of this protocol accept).
"""

from __future__ import annotations

import datetime
import json
from enum import IntEnum

from ..errors import ReproError

PROTOCOL_VERSION = 1

#: Frames above this are rejected before the body is read.
DEFAULT_MAX_FRAME = 8 * 1024 * 1024

HEADER_SIZE = 4


class FrameError(ReproError):
    """The byte stream violates the framing rules (unrecoverable)."""


class Opcode(IntEnum):
    """Every frame type; new opcodes must register a conformance row
    in ``tests/test_net_protocol.py``."""

    HELLO = 1
    HELLO_OK = 2
    PREPARE = 3
    PREPARED = 4
    EXECUTE = 5
    RESULT = 6
    FETCH = 7
    ROWS = 8
    CANCEL = 9
    CANCELLED = 10
    CLOSE = 11
    BYE = 12
    STATS = 13
    STATS_REPLY = 14
    ERROR = 15
    METRICS = 16
    METRICS_REPLY = 17
    FLIGHT_RECORDER = 18
    FLIGHT_RECORDER_REPLY = 19


class ErrorCode:
    """Stable machine-readable ``code`` values for ERROR frames."""

    AUTH_FAILED = "auth_failed"
    BACKPRESSURE = "backpressure"
    BAD_FRAME = "bad_frame"
    BAD_REQUEST = "bad_request"
    CANCELLED = "cancelled"
    DEADLINE_EXCEEDED = "deadline_exceeded"
    INTERNAL = "internal"
    QUERY_ERROR = "query_error"
    REJECTED = "rejected"
    SHUTTING_DOWN = "shutting_down"
    UNKNOWN_OPCODE = "unknown_opcode"
    UNKNOWN_QUERY = "unknown_query"
    UNKNOWN_STATEMENT = "unknown_statement"


def encode_frame(opcode: int, payload: dict | None = None) -> bytes:
    """One frame as bytes: header + opcode byte + compact JSON."""
    if not 0 <= int(opcode) <= 255:
        raise FrameError(f"opcode {opcode!r} does not fit one byte")
    body = bytes([int(opcode)])
    if payload:
        body += json.dumps(
            payload, separators=(",", ":"), ensure_ascii=False,
        ).encode("utf-8")
    return len(body).to_bytes(HEADER_SIZE, "big") + body


def decode_body(body: bytes) -> tuple[int, dict]:
    """Opcode + payload from one frame body (without the header)."""
    if not body:
        raise FrameError("zero-length frame")
    opcode = body[0]
    rest = body[1:]
    if not rest:
        return opcode, {}
    try:
        payload = json.loads(rest.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"malformed frame payload: {exc}") from None
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return opcode, payload


class FrameDecoder:
    """Incremental frame parser for a byte stream.

    ``feed`` accepts any chunking — single bytes, whole frames,
    several frames at once — and returns the complete frames it can
    assemble, holding partial input for the next call.  Oversized and
    zero-length headers raise :class:`FrameError` immediately (before
    the body arrives); a decoder that raised must not be fed again.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME):
        if max_frame < 1:
            raise ValueError("max_frame must be positive")
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, dict]]:
        self._buffer += data
        frames: list[tuple[int, dict]] = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return frames
            length = int.from_bytes(self._buffer[:HEADER_SIZE], "big")
            if length < 1:
                raise FrameError("zero-length frame")
            if length > self.max_frame:
                raise FrameError(
                    f"frame of {length} B exceeds the {self.max_frame} B limit"
                )
            if len(self._buffer) < HEADER_SIZE + length:
                return frames
            body = bytes(self._buffer[HEADER_SIZE:HEADER_SIZE + length])
            del self._buffer[:HEADER_SIZE + length]
            frames.append(decode_body(body))

    @property
    def buffered(self) -> int:
        return len(self._buffer)


async def read_frame(reader, max_frame: int = DEFAULT_MAX_FRAME):
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`FrameError` on oversized/zero-length headers and
    ``ConnectionError`` on mid-frame EOF (a short read).
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ConnectionError("connection closed inside a frame header")
    length = int.from_bytes(header, "big")
    if length < 1:
        raise FrameError("zero-length frame")
    if length > max_frame:
        raise FrameError(
            f"frame of {length} B exceeds the {max_frame} B limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ConnectionError("connection closed inside a frame body")
    return decode_body(body)


# ---------------------------------------------------------------------------
# row value codec
# ---------------------------------------------------------------------------


def encode_value(value):
    """A result cell as a JSON-safe value (dates get a type tag)."""
    if isinstance(value, datetime.date):
        return {"__date__": value.isoformat()}
    return value


def decode_value(value):
    if isinstance(value, dict) and "__date__" in value:
        return datetime.date.fromisoformat(value["__date__"])
    return value


def encode_rows(rows) -> list[list]:
    return [[encode_value(v) for v in row] for row in rows]


def decode_rows(rows) -> list[tuple]:
    return [tuple(decode_value(v) for v in row) for row in rows]


def error_payload(
    code: str,
    message: str,
    query_id: int | None = None,
    retry_after_s: float | None = None,
    flight_record: dict | None = None,
) -> dict:
    payload = {"code": code, "message": message}
    if query_id is not None:
        payload["query_id"] = query_id
    if retry_after_s is not None:
        payload["retry_after_s"] = retry_after_s
    if flight_record is not None:
        payload["flight_record"] = flight_record
    return payload
