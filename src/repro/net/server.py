"""The asyncio socket server bridging connections onto the AsyncEngine.

One :class:`NetServer` owns a listening socket and a shared
:class:`~repro.serve.AsyncEngine`.  Each connection authenticates with
HELLO, then issues PREPARE / EXECUTE / FETCH / CANCEL / STATS /
METRICS / FLIGHT_RECORDER / CLOSE frames.  EXECUTE is asynchronous on the wire: the handler submits the
query to the engine (a quick, lock-bounded call), spawns a task that
awaits the ticket **off the event loop** (``run_in_executor`` over
``QueryTicket.wait``), and keeps reading — so CANCEL and STATS work
while queries run, and several queries per connection can be in
flight.  Device execution semantics are untouched: the engine's
workers run queries exactly as before; the event loop never holds the
session lock.

Fault posture:

* a client disconnect cancels every non-terminal ticket the
  connection owns — admission reservations are released by the
  engine's existing cancel path, nothing leaks;
* :meth:`NetServer.drain` stops accepting EXECUTEs (they get an
  ERROR ``shutting_down``) and blocks until the engine reports every
  accepted query terminal;
* frame-level violations (oversized header, bad JSON) get a
  structured ERROR ``bad_frame`` and the connection is closed — the
  stream cannot be re-synchronised;
* an unknown opcode is answered with ERROR ``unknown_opcode`` but the
  connection survives (framing is intact).

:class:`ServerThread` runs a server on a dedicated thread with its own
event loop — the sync harness tests, the CLI bench mode and the REPL
use it.
"""

from __future__ import annotations

import asyncio
import threading

from ..errors import ReproError
from ..obs.metrics import PROMETHEUS_CONTENT_TYPE
from ..serve.concurrent import AsyncEngine, BackpressureError
from ..serve.session import SessionPrepared
from .protocol import (
    DEFAULT_MAX_FRAME,
    ErrorCode,
    FrameError,
    Opcode,
    PROTOCOL_VERSION,
    encode_frame,
    encode_rows,
    error_payload,
    read_frame,
)
from .qos import TenantRegistry

DEFAULT_FETCH_SIZE = 1024


class _Connection:
    """Per-connection state: tenant, statements, in-flight queries."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.conn_id = 0  # assigned by the server (trace lane id)
        self.spec = None  # TenantSpec once HELLO succeeds
        self.statements: dict[int, SessionPrepared] = {}
        self.next_stmt_id = 1
        self.tickets: dict[int, object] = {}     # query_id -> QueryTicket
        self.cursors: dict[int, list[list]] = {}  # query_id -> undelivered rows
        self.tasks: set[asyncio.Task] = set()
        self.write_lock = asyncio.Lock()
        self.closed = False

    async def send(self, opcode: int, payload: dict | None = None) -> None:
        """Write one frame atomically (frames never interleave)."""
        async with self.write_lock:
            if self.closed:
                return
            try:
                self.writer.write(encode_frame(opcode, payload))
                await self.writer.drain()
            except (ConnectionError, OSError):
                self.closed = True

    async def send_error(self, code: str, message: str,
                         query_id: int | None = None,
                         retry_after_s: float | None = None,
                         flight_record: dict | None = None) -> None:
        await self.send(
            Opcode.ERROR,
            error_payload(code, message, query_id, retry_after_s,
                          flight_record),
        )


class NetServer:
    """The network-facing query server over one shared AsyncEngine.

    The server borrows the engine — it never shuts the engine down;
    the owner controls engine (and session) lifecycle so several
    front ends could share one engine.
    """

    def __init__(
        self,
        engine: AsyncEngine,
        registry: TenantRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = DEFAULT_MAX_FRAME,
        fetch_size: int = DEFAULT_FETCH_SIZE,
        hello_timeout_s: float = 10.0,
    ):
        self.engine = engine
        self.registry = registry
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.fetch_size = fetch_size
        self.hello_timeout_s = hello_timeout_s
        self.draining = False
        self.connections_served = 0
        self._connections: set[_Connection] = set()
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def drain(self, timeout: float | None = None) -> bool:
        """Refuse new EXECUTEs, then wait out every accepted query.

        Returns False if the engine did not drain in ``timeout``
        seconds.  Connections stay open — clients get structured
        ``shutting_down`` errors for new work.
        """
        self.draining = True
        loop = asyncio.get_running_loop()
        drained = await loop.run_in_executor(
            None, lambda: self.engine.drain(timeout)
        )
        # let the per-query tasks deliver their RESULT/ERROR frames
        for conn in list(self._connections):
            tasks = [t for t in conn.tasks if not t.done()]
            if tasks:
                await asyncio.wait(tasks, timeout=5.0)
        return drained

    async def stop(self) -> None:
        """Close the listener and every connection (engine untouched)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections):
            for task in conn.tasks:
                task.cancel()
            conn.closed = True
            conn.writer.close()
        self._connections.clear()

    # -- the connection handler ------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        self.connections_served += 1
        conn.conn_id = self.connections_served
        try:
            if not await self._hello(conn):
                return
            await self._frame_loop(conn)
        except (ConnectionError, OSError):
            pass  # abrupt client death: cleanup below is the contract
        finally:
            self._connections.discard(conn)
            # the load-bearing fault guarantee: a dead connection's
            # queries are cancelled, releasing queue slots and
            # admission reservations (running ones finish and release
            # in the engine worker's finally)
            for ticket in conn.tickets.values():
                if not ticket.done():
                    ticket.cancel()
            conn.closed = True
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _hello(self, conn: _Connection) -> bool:
        try:
            frame = await asyncio.wait_for(
                read_frame(conn.reader, self.max_frame), self.hello_timeout_s,
            )
        except asyncio.TimeoutError:
            await conn.send_error(ErrorCode.BAD_REQUEST, "HELLO timed out")
            return False
        except FrameError as exc:
            await conn.send_error(ErrorCode.BAD_FRAME, str(exc))
            return False
        if frame is None:
            return False
        opcode, payload = frame
        if opcode != Opcode.HELLO:
            await conn.send_error(
                ErrorCode.BAD_REQUEST, "first frame must be HELLO",
            )
            return False
        version = payload.get("version", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            await conn.send_error(
                ErrorCode.BAD_REQUEST,
                f"protocol version {version} unsupported "
                f"(server speaks {PROTOCOL_VERSION})",
            )
            return False
        spec = self.registry.authenticate(payload.get("token", ""))
        if spec is None:
            await conn.send_error(
                ErrorCode.AUTH_FAILED, "unknown tenant token",
            )
            return False
        conn.spec = spec
        await conn.send(Opcode.HELLO_OK, {
            "tenant": spec.name,
            "priority": spec.priority,
            "weight": spec.weight,
            "policy": self.engine.policy,
            "fetch_size": self.fetch_size,
            "max_frame": self.max_frame,
            "version": PROTOCOL_VERSION,
        })
        return True

    async def _frame_loop(self, conn: _Connection) -> None:
        while True:
            try:
                frame = await read_frame(conn.reader, self.max_frame)
            except FrameError as exc:
                await conn.send_error(ErrorCode.BAD_FRAME, str(exc))
                return  # framing is lost; the connection must die
            if frame is None:
                return
            opcode, payload = frame
            if opcode == Opcode.CLOSE:
                await conn.send(Opcode.BYE)
                return
            handler = self._HANDLERS.get(opcode)
            if handler is None:
                await conn.send_error(
                    ErrorCode.UNKNOWN_OPCODE,
                    f"unknown or unexpected opcode {opcode}",
                )
                continue
            await handler(self, conn, payload)

    # -- request handlers ------------------------------------------------

    async def _on_prepare(self, conn: _Connection, payload: dict) -> None:
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            await conn.send_error(
                ErrorCode.BAD_REQUEST, "PREPARE requires a sql string",
            )
            return
        try:
            statement = SessionPrepared(
                self.engine.session, sql, payload.get("mode"),
            )
        except (ValueError, ReproError) as exc:
            await conn.send_error(ErrorCode.BAD_REQUEST, str(exc))
            return
        stmt_id = conn.next_stmt_id
        conn.next_stmt_id += 1
        conn.statements[stmt_id] = statement
        await conn.send(Opcode.PREPARED, {
            "stmt_id": stmt_id, "num_params": statement.num_params,
        })

    async def _on_execute(self, conn: _Connection, payload: dict) -> None:
        query_id = payload.get("query_id")
        if not isinstance(query_id, int):
            await conn.send_error(
                ErrorCode.BAD_REQUEST, "EXECUTE requires an integer query_id",
            )
            return
        if query_id in conn.tickets:
            await conn.send_error(
                ErrorCode.BAD_REQUEST, f"query_id {query_id} already used",
                query_id,
            )
            return
        if self.draining:
            await conn.send_error(
                ErrorCode.SHUTTING_DOWN, "server is draining", query_id,
            )
            return
        mode = payload.get("mode")
        stmt_id = payload.get("stmt_id")
        if stmt_id is not None:
            statement = conn.statements.get(stmt_id)
            if statement is None:
                await conn.send_error(
                    ErrorCode.UNKNOWN_STATEMENT,
                    f"no prepared statement {stmt_id}", query_id,
                )
                return
            try:
                sql = statement.bind(*payload.get("params", []))
            except (TypeError, ValueError) as exc:
                await conn.send_error(
                    ErrorCode.BAD_REQUEST, str(exc), query_id,
                )
                return
            mode = mode or statement.mode
        else:
            sql = payload.get("sql")
            if not isinstance(sql, str) or not sql.strip():
                await conn.send_error(
                    ErrorCode.BAD_REQUEST,
                    "EXECUTE requires sql or stmt_id", query_id,
                )
                return
        try:
            ticket = self.engine.submit(
                sql,
                mode=mode,
                priority=conn.spec.priority,
                deadline_s=payload.get("deadline_s"),
                tenant=conn.spec.name,
                trace=bool(payload.get("trace")),
            )
        except BackpressureError as exc:
            await conn.send_error(
                ErrorCode.BACKPRESSURE, str(exc), query_id,
                retry_after_s=exc.retry_after_s,
            )
            return
        except RuntimeError as exc:
            await conn.send_error(
                ErrorCode.SHUTTING_DOWN, str(exc), query_id,
            )
            return
        conn.tickets[query_id] = ticket
        fetch_size = payload.get("fetch_size") or self.fetch_size
        task = asyncio.create_task(
            self._deliver_result(conn, query_id, ticket, fetch_size)
        )
        conn.tasks.add(task)
        task.add_done_callback(conn.tasks.discard)

    async def _deliver_result(self, conn, query_id, ticket, fetch_size):
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, ticket.wait)
        if conn.closed:
            return
        if ticket.status == "done":
            result = ticket.result
            rows = encode_rows(result.rows)
            first, rest = rows[:fetch_size], rows[fetch_size:]
            if rest:
                conn.cursors[query_id] = rest
            reply = {
                "query_id": query_id,
                "columns": list(result.column_names),
                "rows": first,
                "num_rows": result.num_rows,
                "more": bool(rest),
                "stats": {
                    "total_ns": result.stats.total_ns,
                    "path": result.plan_choice,
                    "plan_cache_hit": ticket.plan_cache_hit,
                    "queue_wait_ms": ticket.queue_wait_ns / 1e6,
                    "wall_run_ms": ticket.wall_run_s * 1e3,
                    "stream": ticket.stream,
                },
            }
            if ticket.trace_payload is not None:
                reply["trace"] = {
                    **ticket.trace_payload,
                    "query_id": query_id,
                    "connection": conn.conn_id,
                }
            await conn.send(Opcode.RESULT, reply)
            return
        detail = ticket.detail or ticket.status
        if ticket.status == "rejected":
            code = ErrorCode.REJECTED
        elif ticket.status == "cancelled":
            code = (
                ErrorCode.DEADLINE_EXCEEDED
                if "deadline" in detail.lower() else ErrorCode.CANCELLED
            )
        else:
            code = ErrorCode.QUERY_ERROR
        await conn.send_error(
            code, detail, query_id, flight_record=ticket.flight_record,
        )

    async def _on_fetch(self, conn: _Connection, payload: dict) -> None:
        query_id = payload.get("query_id")
        remaining = conn.cursors.get(query_id)
        if remaining is None:
            # a known, finished query with no cursor simply has no rows
            # left (zero-row result, or the RESULT frame delivered
            # everything): that's a terminal empty page, not an error
            ticket = conn.tickets.get(query_id)
            if ticket is not None and ticket.done():
                await conn.send(Opcode.ROWS, {
                    "query_id": query_id, "rows": [],
                    "more": False, "done": True,
                })
                return
            await conn.send_error(
                ErrorCode.UNKNOWN_QUERY,
                f"no open cursor for query {query_id}", query_id,
            )
            return
        limit = payload.get("max_rows") or self.fetch_size
        page, rest = remaining[:limit], remaining[limit:]
        if rest:
            conn.cursors[query_id] = rest
        else:
            del conn.cursors[query_id]
        await conn.send(Opcode.ROWS, {
            "query_id": query_id, "rows": page, "more": bool(rest),
            "done": not rest,
        })

    async def _on_cancel(self, conn: _Connection, payload: dict) -> None:
        # CANCEL is always answered with CANCELLED (never ERROR): the
        # EXECUTE's own ERROR frame shares the query_id, and the client
        # must be able to tell the two replies apart
        query_id = payload.get("query_id")
        ticket = conn.tickets.get(query_id)
        if ticket is None:
            await conn.send(Opcode.CANCELLED, {
                "query_id": query_id, "cancelled": False,
                "reason": "unknown query",
            })
            return
        cancelled = ticket.cancel()
        await conn.send(Opcode.CANCELLED, {
            "query_id": query_id, "cancelled": cancelled,
        })

    async def _on_stats(self, conn: _Connection, payload: dict) -> None:
        admission = self.engine.admission
        stats = {
            "server": {
                "policy": self.engine.policy,
                "workers": self.engine.workers,
                "draining": self.draining,
                "connections": len(self._connections),
                "connections_served": self.connections_served,
                "queue_depth": self.engine.queue_depth,
            },
            "admission": {
                "capacity_bytes": admission.capacity,
                "in_use_bytes": admission.in_use,
                "high_water_bytes": admission.high_water,
                "admitted": admission.admitted_count,
                "cancelled": admission.cancelled_count,
                "waiting": admission.waiting,
            },
            "tenants": self.engine.tenant_stats(),
        }
        metrics = self.engine.session.metrics
        if metrics is not None:
            stats["metrics"] = metrics.dump_prefix("qos.")
        await conn.send(Opcode.STATS_REPLY, stats)

    async def _on_metrics(self, conn: _Connection, payload: dict) -> None:
        """Prometheus text exposition over the wire (a pull scrape)."""
        metrics = self.engine.session.metrics
        text = "" if metrics is None else metrics.render_prometheus()
        await conn.send(Opcode.METRICS_REPLY, {
            "content_type": PROMETHEUS_CONTENT_TYPE,
            "text": text,
        })

    async def _on_flight(self, conn: _Connection, payload: dict) -> None:
        limit = payload.get("limit")
        if limit is not None and not isinstance(limit, int):
            await conn.send_error(
                ErrorCode.BAD_REQUEST, "limit must be an integer",
            )
            return
        await conn.send(
            Opcode.FLIGHT_RECORDER_REPLY,
            self.engine.flight_recorder.to_dict(limit),
        )

    _HANDLERS = {
        Opcode.PREPARE: _on_prepare,
        Opcode.EXECUTE: _on_execute,
        Opcode.FETCH: _on_fetch,
        Opcode.CANCEL: _on_cancel,
        Opcode.STATS: _on_stats,
        Opcode.METRICS: _on_metrics,
        Opcode.FLIGHT_RECORDER: _on_flight,
    }


class ServerThread:
    """A NetServer on a dedicated thread with a private event loop.

    The synchronous world's handle on the server: tests, the CLI
    client harness and the bench socket mode start one, talk to
    ``host:port`` over real sockets, then ``stop()`` it.  The engine
    is still the caller's to drain/shut down (do that *before*
    ``stop`` so executor threads blocked in ``ticket.wait`` can
    finish).
    """

    def __init__(self, server: NetServer):
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-net-server", daemon=True,
        )

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("server thread failed to start in 10 s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            self._loop.close()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
            # cancelled-but-unfinished tasks get one last cycle
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            self._loop.run_until_complete(
                self._loop.shutdown_default_executor()
            )
        finally:
            self._loop.close()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def _call(self, coro, timeout: float | None):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    def drain(self, timeout: float | None = None) -> bool:
        """Synchronous :meth:`NetServer.drain` from any thread."""
        extra = 10.0 if timeout is not None else None
        return self._call(
            self.server.drain(timeout),
            None if timeout is None else timeout + extra,
        )

    def stop(self, timeout: float = 30.0) -> None:
        """Close the server and join the loop thread (idempotent)."""
        if not self._thread.is_alive():
            return
        try:
            self._call(self.server.stop(), timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
