"""Fuzz-campaign orchestration and the ``repro fuzz`` CLI.

A campaign is: for each iteration, generate one query from
``(seed, index)``, run it through the differential matrix, and — on a
mismatch or engine error — optionally shrink it and write a replayable
artifact directory::

    <out>/case-<seed>-<index>/
        query.sql     the original failing query
        minimal.sql   the shrunk reproducer (with --shrink)
        meta.json     seed, index, scale, matrix, failing configs
        trace.json    Chrome trace of the nested run (with --trace)

Replaying: ``repro fuzz --replay <dir-or-.sql>`` re-runs the saved
query through the same matrix (scale and matrix are read from
``meta.json`` when present, overridable on the command line).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..sql import parse, unparse
from ..storage import Catalog
from ..tpch import generate_tpch
from .differential import DifferentialRunner, Report, config_matrix
from .generator import FuzzQuery, generate_query
from .shrinker import shrink

DEFAULT_SCALE = 0.05


@dataclass
class CaseResult:
    """The outcome of one fuzzed query."""

    index: int
    query: FuzzQuery
    report: Report | None
    generation_error: str | None = None
    artifact_dir: Path | None = None
    minimal_sql: str | None = None


@dataclass
class CampaignResult:
    """Aggregated outcome of a fuzz run."""

    seed: int
    iterations: int
    scale: float
    matrix: str
    cases: list[CaseResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def failures(self) -> list[CaseResult]:
        return [
            c for c in self.cases
            if c.generation_error is not None
            or (c.report is not None and not c.report.ok)
        ]

    @property
    def skipped_unnested(self) -> int:
        return sum(
            len(c.report.skipped) for c in self.cases if c.report is not None
        )

    def summary(self) -> str:
        kinds: dict[str, int] = {}
        for case in self.cases:
            kind = case.query.features.get("kind", "?") if case.query else "?"
            kinds[kind] = kinds.get(kind, 0) + 1
        kind_text = ", ".join(f"{k}:{v}" for k, v in sorted(kinds.items()))
        return (
            f"{len(self.cases)} queries ({kind_text}); "
            f"{len(self.failures)} failing; "
            f"{self.skipped_unnested} unnestable-skips; "
            f"{self.elapsed_s:.1f}s"
        )


def run_campaign(
    seed: int,
    iterations: int,
    scale: float = DEFAULT_SCALE,
    matrix: str = "full",
    do_shrink: bool = False,
    out_dir: str | Path | None = None,
    catalog: Catalog | None = None,
    runner: DifferentialRunner | None = None,
    log=None,
    do_trace: bool = False,
    fresh_engine: bool = False,
) -> CampaignResult:
    """Run ``iterations`` fuzzed queries; optionally shrink failures.

    By default the engine side of the matrix runs on standing
    :class:`~repro.serve.EngineSession` instances (one per config) so
    the campaign soaks the session machinery; ``fresh_engine=True``
    restores a brand-new engine per query per config.
    """
    started = time.monotonic()
    catalog = catalog or generate_tpch(scale)
    owns_runner = runner is None
    runner = runner or DifferentialRunner(
        catalog, config_matrix(matrix), reuse_sessions=not fresh_engine
    )
    campaign = CampaignResult(seed, iterations, scale, matrix)
    for index in range(iterations):
        query = generate_query(catalog, seed, index)
        try:
            report = runner.run(query.sql)
        except Exception as exc:  # oracle/binder rejection = generator bug
            case = CaseResult(index, query, None,
                              generation_error=f"{type(exc).__name__}: {exc}")
            campaign.cases.append(case)
            if log:
                log(f"[{index}] generation error: {case.generation_error}\n    {query.sql}")
            continue
        case = CaseResult(index, query, report)
        campaign.cases.append(case)
        if report.ok:
            if log:
                log(f"[{index}] ok ({report.summary()}) {query.features}")
            continue
        if log:
            first = (report.mismatches + report.errors)[0]
            log(f"[{index}] FAIL {first.engine}/{first.config}: {first.detail}\n    {query.sql}")
        if do_shrink:
            case.minimal_sql = _shrink_case(query, runner)
            if log and case.minimal_sql:
                log(f"[{index}] shrunk to: {case.minimal_sql}")
        if out_dir is not None:
            case.artifact_dir = write_artifact(
                Path(out_dir), campaign, case
            )
            if do_trace:
                write_case_trace(
                    catalog, query.sql, case.artifact_dir / "trace.json"
                )
    if owns_runner:
        runner.close()
    campaign.elapsed_s = time.monotonic() - started
    return campaign


def write_case_trace(catalog: Catalog, sql: str, path: Path) -> None:
    """Re-run a failing query under the tracer and save a Chrome trace
    next to the reproducer.

    A failing case may die mid-execution — the partial trace (whatever
    spans were reached) is still written, which is exactly what makes
    it useful for debugging; only the export itself is allowed to fail
    silently.
    """
    from ..core import NestGPU
    from ..obs import Tracer, write_chrome_trace

    tracer = Tracer()
    try:
        NestGPU(catalog, tracer=tracer).execute(sql, mode="nested")
    except Exception:
        pass  # the differential runner already recorded the failure
    try:
        tracer.finish()
        write_chrome_trace(path, tracer)
    except Exception:
        pass


def _shrink_case(query: FuzzQuery, runner: DifferentialRunner) -> str:
    def still_fails(stmt) -> bool:
        report = runner.run(unparse(stmt))
        return not report.ok

    minimal = shrink(query.stmt, still_fails)
    return unparse(minimal)


def write_artifact(out_dir: Path, campaign: CampaignResult,
                   case: CaseResult) -> Path:
    """Persist a failing case as a replayable directory."""
    directory = out_dir / f"case-{campaign.seed}-{case.index}"
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "query.sql").write_text(case.query.sql + "\n")
    if case.minimal_sql:
        (directory / "minimal.sql").write_text(case.minimal_sql + "\n")
    failing = []
    if case.report is not None:
        failing = [
            {"engine": o.engine, "config": o.config,
             "status": o.status, "detail": o.detail}
            for o in case.report.mismatches + case.report.errors
        ]
    meta = {
        "seed": campaign.seed,
        "index": case.index,
        "scale": campaign.scale,
        "matrix": campaign.matrix,
        "features": case.query.features,
        "generation_error": case.generation_error,
        "failing": failing,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2) + "\n")
    return directory


def replay(path: str | Path, scale: float | None = None,
           matrix: str | None = None, log=None) -> Report:
    """Re-run a saved reproducer (.sql file or artifact directory)."""
    target = Path(path)
    meta: dict = {}
    if target.is_dir():
        meta_path = target / "meta.json"
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
        sql_path = target / "minimal.sql"
        if not sql_path.exists():
            sql_path = target / "query.sql"
    else:
        sql_path = target
        sibling = target.parent / "meta.json"
        if sibling.exists():
            meta = json.loads(sibling.read_text())
    sql = sql_path.read_text().strip()
    scale = scale if scale is not None else float(meta.get("scale", DEFAULT_SCALE))
    matrix = matrix or meta.get("matrix", "full")
    catalog = generate_tpch(scale)
    runner = DifferentialRunner(catalog, config_matrix(matrix))
    parse(sql)  # surface syntax problems as SqlError before executing
    report = runner.run(sql)
    if log:
        verdict = "ok" if report.ok else "FAIL"
        log(f"{verdict} ({report.summary()}) scale={scale} matrix={matrix}")
        for outcome in report.mismatches + report.errors:
            log(f"  {outcome.engine}/{outcome.config}: {outcome.detail}")
    return report


# -- CLI --------------------------------------------------------------------


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli fuzz",
        description=(
            "Differential fuzzing: random correlated SQL over micro-TPC-H, "
            "cross-checked between the rowstore oracle, NestGPU nested, and "
            "the unnested rewrite across an optimization config matrix."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed")
    parser.add_argument(
        "--iterations", type=int, default=50, help="number of queries"
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help=f"TPC-H micro scale factor (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--config-matrix", choices=("full", "minimal", "single"),
        default=None, dest="matrix",
        help="optimization configurations to sweep (default: full)",
    )
    parser.add_argument(
        "--shrink", action="store_true",
        help="delta-debug failing queries to minimal reproducers",
    )
    parser.add_argument(
        "--out", default="fuzz-failures",
        help="artifact directory for failing cases (default: fuzz-failures)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="save a Chrome trace JSON (nested path) with each failing case",
    )
    parser.add_argument(
        "--replay", metavar="PATH",
        help="re-run a saved .sql reproducer or artifact directory and exit",
    )
    parser.add_argument(
        "--fresh-engine", action="store_true",
        help="build a fresh engine per query instead of reusing one "
        "engine session per configuration",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="per-query progress"
    )
    return parser


def fuzz_main(argv: list[str] | None = None, stdout=None) -> int:
    stdout = stdout or sys.stdout
    args = build_fuzz_parser().parse_args(argv)

    def log(message: str) -> None:
        print(message, file=stdout)

    if args.replay:
        try:
            # None lets replay() fall back to the artifact's meta.json
            report = replay(
                args.replay, scale=args.scale, matrix=args.matrix, log=log
            )
        except FileNotFoundError as exc:
            log(f"error: no reproducer at {exc.filename or args.replay}")
            return 2
        return 0 if report.ok else 1

    campaign = run_campaign(
        seed=args.seed,
        iterations=args.iterations,
        scale=args.scale if args.scale is not None else DEFAULT_SCALE,
        matrix=args.matrix or "full",
        do_shrink=args.shrink,
        out_dir=args.out,
        log=log if args.verbose else None,
        do_trace=args.trace,
        fresh_engine=args.fresh_engine,
    )
    log(f"fuzz: {campaign.summary()}")
    if campaign.failures:
        for case in campaign.failures:
            detail = case.generation_error
            if detail is None and case.report is not None:
                bad = case.report.mismatches + case.report.errors
                detail = "; ".join(
                    f"{o.engine}/{o.config}: {o.detail}" for o in bad[:3]
                )
            log(f"  case {campaign.seed}-{case.index}: {detail}")
            log(f"    sql: {case.query.sql}")
            if case.minimal_sql:
                log(f"    minimal: {case.minimal_sql}")
        log(f"artifacts in {args.out}/")
        return 1
    return 0
