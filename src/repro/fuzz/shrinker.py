"""Delta-debugging a failing fuzz query down to a minimal reproducer.

Classic greedy shrinking over the AST: each pass proposes candidate
simplifications (drop a conjunct anywhere in the query tree, keep one
disjunct of an OR — which shrinks each SUBQ of a multi-subquery
predicate independently and can drop one entirely — unwrap a NOT,
replace a scalar subquery operand with a literal, drop SELECT items,
strip ORDER BY / DISTINCT / LIMIT / HAVING, move literals toward
zero), a candidate is kept when the caller-provided
``still_fails`` predicate confirms the divergence survives, and the
loop runs to a fixpoint.  The predicate is expected to swallow engine
errors and return ``False`` for candidates that stop being valid
queries — invalid shrinks are simply rejected.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator

from ..sql import ast, unparse

_MAX_ATTEMPTS = 400


def shrink(
    stmt: ast.SelectStmt,
    still_fails: Callable[[ast.SelectStmt], bool],
    max_attempts: int = _MAX_ATTEMPTS,
) -> ast.SelectStmt:
    """Greedy fixpoint shrink of ``stmt`` preserving ``still_fails``."""
    current = stmt
    budget = max_attempts
    improved = True
    while improved and budget > 0:
        improved = False
        for candidate in _candidates(current):
            if budget <= 0:
                break
            if _size(candidate) >= _size(current):
                continue
            budget -= 1
            try:
                failing = still_fails(candidate)
            except Exception:
                failing = False
            if failing:
                current = candidate
                improved = True
                break  # restart candidate enumeration from the smaller tree
    return current


def _size(stmt: ast.SelectStmt) -> int:
    return len(unparse(stmt))


# -- candidate enumeration --------------------------------------------------


def _candidates(stmt: ast.SelectStmt) -> Iterator[ast.SelectStmt]:
    yield from _clause_drops(stmt)
    yield from _conjunct_drops(stmt)
    yield from _rewrite_candidates(stmt)
    yield from _select_item_drops(stmt)
    yield from _literal_shrinks(stmt)


def _clause_drops(stmt: ast.SelectStmt) -> Iterator[ast.SelectStmt]:
    if stmt.order_by:
        yield dataclasses.replace(stmt, order_by=())
    if stmt.distinct:
        yield dataclasses.replace(stmt, distinct=False)
    if stmt.limit is not None:
        yield dataclasses.replace(stmt, limit=None)
    if stmt.having is not None:
        yield dataclasses.replace(stmt, having=None)


def _select_item_drops(stmt: ast.SelectStmt) -> Iterator[ast.SelectStmt]:
    if len(stmt.items) <= 1:
        return
    for i in range(len(stmt.items)):
        items = stmt.items[:i] + stmt.items[i + 1:]
        yield dataclasses.replace(stmt, items=items)


def _conjunct_drops(stmt: ast.SelectStmt) -> Iterator[ast.SelectStmt]:
    """Every version of ``stmt`` with one WHERE/HAVING conjunct removed,
    at any nesting depth (subquery bodies included)."""
    total = _count_conjunct_sites(stmt)
    for site in range(total):
        dropped = _drop_site(stmt, [site])
        if dropped is not None:
            yield dropped


def _count_conjunct_sites(stmt: ast.SelectStmt) -> int:
    count = 0
    for block, clause in _walk_clauses(stmt):
        count += len(ast.split_conjuncts(clause))
    return count


def _walk_clauses(stmt: ast.SelectStmt):
    """Yield (statement, clause-expr) for WHERE/HAVING of every block."""
    yield stmt, stmt.where
    yield stmt, stmt.having
    for sub in _subqueries_of(stmt):
        yield from _walk_clauses(sub)


def _subqueries_of(stmt: ast.SelectStmt) -> list[ast.SelectStmt]:
    found: list[ast.SelectStmt] = []

    def visit_expr(expr: ast.Expr | None) -> None:
        if expr is None:
            return
        if isinstance(expr, (ast.SubqueryExpr, ast.ExistsExpr, ast.QuantifiedExpr)):
            found.append(expr.query)
            return
        if isinstance(expr, ast.InExpr):
            if expr.query is not None:
                found.append(expr.query)
            return
        for child in _children(expr):
            visit_expr(child)

    for item in stmt.items:
        if not isinstance(item.expr, ast.Star):
            visit_expr(item.expr)
    visit_expr(stmt.where)
    visit_expr(stmt.having)
    for from_item in stmt.from_items:
        if isinstance(from_item, ast.DerivedTable):
            found.append(from_item.query)
    return found


def _children(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, ast.UnaryOp):
        return [expr.operand]
    if isinstance(expr, ast.FuncCall):
        return list(expr.args)
    if isinstance(expr, ast.BetweenExpr):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, ast.LikeExpr):
        return [expr.operand]
    if isinstance(expr, ast.InExpr):
        return [expr.operand, *expr.values]
    return []


def _drop_site(stmt: ast.SelectStmt, counter: list[int]) -> ast.SelectStmt | None:
    """Rebuild ``stmt`` with the ``counter[0]``-th conjunct site removed.

    ``counter`` is a single-element mutable cell decremented across the
    recursive walk; the site ordering matches `_walk_clauses`.
    """
    where = _drop_from_clause(stmt.where, counter)
    having = _drop_from_clause(stmt.having, counter)
    new = dataclasses.replace(stmt, where=where, having=having)
    return _rewrite_subqueries(new, counter)


def _drop_from_clause(clause: ast.Expr | None, counter: list[int]) -> ast.Expr | None:
    if clause is None:
        return None
    conjuncts = ast.split_conjuncts(clause)
    kept: list[ast.Expr] = []
    for conjunct in conjuncts:
        if counter[0] == 0:
            counter[0] -= 1
            continue  # this is the site being dropped
        counter[0] -= 1
        kept.append(conjunct)
    if len(kept) == len(conjuncts):
        return clause  # nothing dropped here; keep original shape
    expr: ast.Expr | None = None
    for conjunct in kept:
        expr = conjunct if expr is None else ast.BinaryOp("and", expr, conjunct)
    return expr


def _rewrite_subqueries(stmt: ast.SelectStmt, counter: list[int]) -> ast.SelectStmt:
    """Apply `_drop_site` recursively to every nested subquery."""

    def rewrite_expr(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.SubqueryExpr):
            return ast.SubqueryExpr(_drop_site(expr.query, counter))
        if isinstance(expr, ast.ExistsExpr):
            return ast.ExistsExpr(_drop_site(expr.query, counter), expr.negated)
        if isinstance(expr, ast.QuantifiedExpr):
            return ast.QuantifiedExpr(
                expr.op, expr.quantifier, rewrite_expr(expr.operand),
                _drop_site(expr.query, counter),
            )
        if isinstance(expr, ast.InExpr):
            if expr.query is not None:
                return ast.InExpr(
                    rewrite_expr(expr.operand),
                    query=_drop_site(expr.query, counter),
                    negated=expr.negated,
                )
            return expr
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(expr.op, rewrite_expr(expr.left), rewrite_expr(expr.right))
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, rewrite_expr(expr.operand))
        if isinstance(expr, ast.BetweenExpr):
            return ast.BetweenExpr(
                rewrite_expr(expr.operand), rewrite_expr(expr.low),
                rewrite_expr(expr.high), expr.negated,
            )
        return expr

    items = tuple(
        item if isinstance(item.expr, ast.Star)
        else ast.SelectItem(rewrite_expr(item.expr), item.alias)
        for item in stmt.items
    )
    where = rewrite_expr(stmt.where) if stmt.where is not None else None
    having = rewrite_expr(stmt.having) if stmt.having is not None else None
    from_items = tuple(
        ast.DerivedTable(_drop_site(f.query, counter), f.alias)
        if isinstance(f, ast.DerivedTable) else f
        for f in stmt.from_items
    )
    return dataclasses.replace(
        stmt, items=items, where=where, having=having, from_items=from_items
    )


def _map_expr(expr: ast.Expr, fn) -> ast.Expr:
    """Rebuild ``expr`` top-down; ``fn`` returning a node replaces the
    subtree (no further descent), returning None keeps descending."""
    replaced = fn(expr)
    if replaced is not None:
        return replaced
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, _map_expr(expr.left, fn), _map_expr(expr.right, fn))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _map_expr(expr.operand, fn))
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name, tuple(_map_expr(a, fn) for a in expr.args),
            expr.star, expr.distinct,
        )
    if isinstance(expr, ast.BetweenExpr):
        return ast.BetweenExpr(
            _map_expr(expr.operand, fn), _map_expr(expr.low, fn),
            _map_expr(expr.high, fn), expr.negated,
        )
    if isinstance(expr, ast.LikeExpr):
        return ast.LikeExpr(_map_expr(expr.operand, fn), expr.pattern, expr.negated)
    if isinstance(expr, ast.InExpr):
        return ast.InExpr(
            _map_expr(expr.operand, fn),
            query=_map_stmt(expr.query, fn) if expr.query is not None else None,
            values=tuple(_map_expr(v, fn) for v in expr.values),
            negated=expr.negated,
        )
    if isinstance(expr, ast.SubqueryExpr):
        return ast.SubqueryExpr(_map_stmt(expr.query, fn))
    if isinstance(expr, ast.ExistsExpr):
        return ast.ExistsExpr(_map_stmt(expr.query, fn), expr.negated)
    if isinstance(expr, ast.QuantifiedExpr):
        return ast.QuantifiedExpr(
            expr.op, expr.quantifier, _map_expr(expr.operand, fn),
            _map_stmt(expr.query, fn),
        )
    return expr


def _map_stmt(stmt: ast.SelectStmt, fn) -> ast.SelectStmt:
    items = tuple(
        item if isinstance(item.expr, ast.Star)
        else ast.SelectItem(_map_expr(item.expr, fn), item.alias)
        for item in stmt.items
    )
    where = _map_expr(stmt.where, fn) if stmt.where is not None else None
    having = _map_expr(stmt.having, fn) if stmt.having is not None else None
    from_items = tuple(
        ast.DerivedTable(_map_stmt(f.query, fn), f.alias)
        if isinstance(f, ast.DerivedTable) else f
        for f in stmt.from_items
    )
    return dataclasses.replace(
        stmt, items=items, where=where, having=having, from_items=from_items
    )


def _proposals(expr: ast.Expr) -> list[ast.Expr]:
    """Local simplifications of one expression node."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "or":
        # keep either disjunct — shrinks each SUBQ of an OR-combined
        # pair independently and can drop one of them entirely
        return [expr.left, expr.right]
    if isinstance(expr, ast.UnaryOp) and expr.op == "not":
        return [expr.operand]
    if isinstance(expr, ast.SubqueryExpr):
        # a both-sides comparison degrades to a one-subquery comparison
        return [ast.Literal(0, "int")]
    # the next two target kernel-fusion divergences: a fused predicate
    # chain is one mask kernel per comparison / IN membership, so
    # halving an IN-list or degrading BETWEEN to one bound isolates
    # which mask of the fused chain disagrees with the unfused run
    if isinstance(expr, ast.InExpr) and expr.query is None and len(expr.values) > 1:
        half = len(expr.values) // 2
        return [
            ast.InExpr(expr.operand, values=expr.values[:half],
                       negated=expr.negated),
            ast.InExpr(expr.operand, values=expr.values[half:],
                       negated=expr.negated),
        ]
    if isinstance(expr, ast.BetweenExpr) and not expr.negated:
        return [
            ast.BinaryOp(">=", expr.operand, expr.low),
            ast.BinaryOp("<=", expr.operand, expr.high),
        ]
    return []


def _rewrite_candidates(stmt: ast.SelectStmt) -> Iterator[ast.SelectStmt]:
    """One local `_proposals` rewrite applied at each site in turn."""
    count = [0]

    def counting(expr: ast.Expr) -> None:
        count[0] += len(_proposals(expr))
        return None

    _map_stmt(stmt, counting)
    for site in range(count[0]):
        state = [site, False]  # [remaining offset, consumed]

        def rewriting(expr: ast.Expr):
            if state[1]:
                return None
            options = _proposals(expr)
            if not options:
                return None
            if state[0] < len(options):
                choice = options[state[0]]
                state[1] = True
                return choice
            state[0] -= len(options)
            return None

        yield _map_stmt(stmt, rewriting)


def _literal_shrinks(stmt: ast.SelectStmt) -> Iterator[ast.SelectStmt]:
    """Versions of ``stmt`` with one numeric literal moved toward zero."""
    literals: list[ast.Literal] = []

    def collect(node: ast.SelectStmt) -> None:
        def visit(expr: ast.Expr | None) -> None:
            if expr is None:
                return
            if isinstance(expr, ast.Literal) and expr.kind in ("int", "decimal"):
                if expr.value:
                    literals.append(expr)
                return
            for child in _children(expr):
                visit(child)

        for item in node.items:
            if not isinstance(item.expr, ast.Star):
                visit(item.expr)
        visit(node.where)
        visit(node.having)
        for sub in _subqueries_of(node):
            collect(sub)

    collect(stmt)
    for target in literals:
        if target.kind == "int":
            smaller = ast.Literal(int(target.value) // 2, "int")
        else:
            smaller = ast.Literal(float(f"{float(target.value) / 2:.2f}"), "decimal")
        yield _replace_literal(stmt, target, smaller)


def _replace_literal(
    stmt: ast.SelectStmt, target: ast.Literal, replacement: ast.Literal
) -> ast.SelectStmt:
    done = [False]  # replace only the first structurally-identical hit

    def rewrite_expr(expr: ast.Expr) -> ast.Expr:
        if done[0]:
            return expr
        if expr is target or (
            isinstance(expr, ast.Literal) and expr == target and not done[0]
        ):
            done[0] = True
            return replacement
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(expr.op, rewrite_expr(expr.left), rewrite_expr(expr.right))
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, rewrite_expr(expr.operand))
        if isinstance(expr, ast.FuncCall):
            return ast.FuncCall(
                expr.name, tuple(rewrite_expr(a) for a in expr.args),
                expr.star, expr.distinct,
            )
        if isinstance(expr, ast.BetweenExpr):
            return ast.BetweenExpr(
                rewrite_expr(expr.operand), rewrite_expr(expr.low),
                rewrite_expr(expr.high), expr.negated,
            )
        if isinstance(expr, ast.LikeExpr):
            return ast.LikeExpr(rewrite_expr(expr.operand), expr.pattern, expr.negated)
        if isinstance(expr, ast.InExpr):
            return ast.InExpr(
                rewrite_expr(expr.operand),
                query=rewrite_stmt(expr.query) if expr.query is not None else None,
                values=tuple(rewrite_expr(v) for v in expr.values),
                negated=expr.negated,
            )
        if isinstance(expr, ast.SubqueryExpr):
            return ast.SubqueryExpr(rewrite_stmt(expr.query))
        if isinstance(expr, ast.ExistsExpr):
            return ast.ExistsExpr(rewrite_stmt(expr.query), expr.negated)
        if isinstance(expr, ast.QuantifiedExpr):
            return ast.QuantifiedExpr(
                expr.op, expr.quantifier, rewrite_expr(expr.operand),
                rewrite_stmt(expr.query),
            )
        return expr

    def rewrite_stmt(node: ast.SelectStmt) -> ast.SelectStmt:
        items = tuple(
            item if isinstance(item.expr, ast.Star)
            else ast.SelectItem(rewrite_expr(item.expr), item.alias)
            for item in node.items
        )
        where = rewrite_expr(node.where) if node.where is not None else None
        having = rewrite_expr(node.having) if node.having is not None else None
        return dataclasses.replace(node, items=items, where=where, having=having)

    return rewrite_stmt(stmt)
