"""Differential query fuzzing for the NestGPU reproduction.

* :mod:`.generator` — seeded random correlated SQL over TPC-H;
* :mod:`.differential` — oracle / nested / unnested cross-checking
  across the optimization config matrix;
* :mod:`.shrinker` — delta-debugging failures to minimal reproducers;
* :mod:`.runner` — campaign orchestration, artifacts, and the
  ``repro fuzz`` CLI subcommand.
"""

from .differential import (
    DifferentialRunner,
    Outcome,
    Report,
    canon_rows,
    config_matrix,
    rows_match,
)
from .generator import FuzzQuery, QueryGenerator, generate_query
from .runner import CampaignResult, fuzz_main, replay, run_campaign
from .shrinker import shrink

__all__ = [
    "CampaignResult",
    "DifferentialRunner",
    "FuzzQuery",
    "Outcome",
    "QueryGenerator",
    "Report",
    "canon_rows",
    "config_matrix",
    "fuzz_main",
    "generate_query",
    "replay",
    "rows_match",
    "run_campaign",
    "shrink",
]
