"""Seeded random generation of well-typed correlated SQL over TPC-H.

The generator builds :mod:`repro.sql.ast` trees directly — structural
construction is how type discipline is enforced — and renders them
through :func:`repro.sql.unparse`.  Every query contains at least one
subquery; the dimensions the fuzzer sweeps are:

* **subquery kind** — scalar (aggregate), EXISTS / NOT EXISTS,
  IN / NOT IN, quantified (``op ANY|ALL``);
* **placement** — WHERE (the common case), SELECT list (scalar only),
  HAVING (scalar against a group aggregate);
* **correlation depth** — 0 (uncorrelated type-A/N), 1 (the paper's
  type-J/JA), or 2 (a subquery inside the subquery, correlated to the
  middle or the outermost level, the paper's Figure 6 shape);
* **predicate mix** — numeric comparisons, BETWEEN, string equality,
  LIKE, IN-lists, date windows, plus optional non-equality correlation
  (which makes the query non-unnestable, exercising the fallback path);
* **aggregate choice** — min/max/sum/avg/count/count(*), sometimes
  under arithmetic (the Q17 ``0.2 * avg`` shape);
* **subquery count** — two independent SUBQs in one WHERE (AND- or
  OR-combined), or scalar subqueries on *both* sides of one
  comparison (``features["num_subqueries"] == 2``);
* **negation shape** — ``NOT IN`` via the flag and via an explicit
  ``NOT (x IN ...)`` wrapper, plus disjunctive correlation inside the
  subquery body — the non-unnestable shapes that force the nested
  fallback.

Literals are sampled from the actual column data so predicates sit on
the live value range (all-empty results would test nothing); the
sampled value is nudged with small offsets so exact-hit and near-miss
boundaries both occur.

Determinism: one :class:`QueryGenerator` seeded with ``(seed, index)``
produces exactly one query, independent of any other index — the
property replay and shrinking rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..sql import ast, unparse
from ..storage import Catalog
from ..storage.datatypes import int_to_date

# Key relationships of the TPC-H schema: (table_a, col_a, table_b, col_b)
# pairs whose equality is a meaningful (and hit-producing) correlation.
JOIN_PAIRS = [
    ("customer", "c_custkey", "orders", "o_custkey"),
    ("orders", "o_orderkey", "lineitem", "l_orderkey"),
    ("part", "p_partkey", "partsupp", "ps_partkey"),
    ("part", "p_partkey", "lineitem", "l_partkey"),
    ("supplier", "s_suppkey", "partsupp", "ps_suppkey"),
    ("supplier", "s_suppkey", "lineitem", "l_suppkey"),
    ("nation", "n_nationkey", "supplier", "s_nationkey"),
    ("nation", "n_nationkey", "customer", "c_nationkey"),
    ("region", "r_regionkey", "nation", "n_regionkey"),
    ("customer", "c_nationkey", "supplier", "s_nationkey"),
]

# Same-kind column pairs for *non-equality* correlation (decimal with
# decimal, date with date); these produce the paper's non-unnestable
# Query-5 family.
ORDERED_PAIRS = [
    ("part", "p_retailprice", "partsupp", "ps_supplycost"),
    ("part", "p_retailprice", "lineitem", "l_extendedprice"),
    ("customer", "c_acctbal", "supplier", "s_acctbal"),
    ("orders", "o_orderdate", "lineitem", "l_shipdate"),
    ("orders", "o_totalprice", "lineitem", "l_extendedprice"),
]

_COMPARES = ["=", "!=", "<", "<=", ">", ">="]
_AGGREGATES = ["min", "max", "sum", "avg", "count"]


@dataclass
class FuzzQuery:
    """One generated query plus the knobs that produced it."""

    seed: object
    stmt: ast.SelectStmt
    sql: str
    features: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.sql


class _TableInfo:
    """Column classification of one catalog table."""

    def __init__(self, table):
        self.name = table.name
        self.table = table
        self.int_cols: list[str] = []
        self.dec_cols: list[str] = []
        self.date_cols: list[str] = []
        self.str_cols: list[str] = []
        for column in table.schema():
            kind = column.dtype.name
            if kind == "int":
                self.int_cols.append(column.name)
            elif kind == "decimal":
                self.dec_cols.append(column.name)
            elif kind == "date":
                self.date_cols.append(column.name)
            elif kind == "string":
                self.str_cols.append(column.name)

    @property
    def numeric_cols(self) -> list[str]:
        return self.int_cols + self.dec_cols


class QueryGenerator:
    """Generates one random correlated query per ``generate()`` call."""

    def __init__(self, catalog: Catalog, seed: object):
        self.catalog = catalog
        self.rng = random.Random(repr(seed))
        self.seed = seed
        self.tables = {t.name: _TableInfo(t) for t in catalog}

    # -- literal sampling ---------------------------------------------------

    def _column_kind(self, table: str, column: str) -> str:
        return self.catalog.table(table).column(column).dtype.name

    def _sample_value(self, table: str, column: str):
        """A raw value drawn from the column's actual data."""
        col = self.catalog.table(table).column(column)
        if col.data.size == 0:
            return 0
        raw = col.data[self.rng.randrange(col.data.size)]
        return raw

    def _sample_literal(self, table: str, column: str) -> ast.Literal:
        kind = self._column_kind(table, column)
        raw = self._sample_value(table, column)
        if kind == "int":
            value = int(raw) + self.rng.choice([-1, 0, 0, 0, 1])
            return ast.Literal(value, "int")
        if kind == "decimal":
            jitter = self.rng.choice([0.9, 1.0, 1.0, 1.1])
            value = float(f"{float(raw) * jitter:.2f}")
            return ast.Literal(value, "decimal")
        if kind == "date":
            day = int_to_date(int(raw) + self.rng.choice([-30, 0, 0, 30]))
            return ast.Literal(day.isoformat(), "date")
        # string: decode through the dictionary
        col = self.catalog.table(table).column(column)
        text = col.dictionary.decode([int(raw)])[0]
        return ast.Literal(text, "string")

    # -- predicate generation -----------------------------------------------

    def _plain_predicate(self, info: _TableInfo, qualifier: str | None) -> ast.Expr | None:
        """One non-correlated predicate on a random column of ``info``."""
        choices: list[str] = []
        if info.numeric_cols:
            choices += ["num_cmp", "num_between", "num_in"]
        if info.str_cols:
            choices += ["str_eq", "str_like"]
        if info.date_cols:
            choices += ["date_cmp"]
        if not choices:
            return None
        shape = self.rng.choice(choices)
        ref = lambda name: ast.ColumnRef(name, table=qualifier)

        if shape == "num_cmp":
            column = self.rng.choice(info.numeric_cols)
            op = self.rng.choice(_COMPARES)
            return ast.BinaryOp(op, ref(column), self._sample_literal(info.name, column))
        if shape == "num_between":
            column = self.rng.choice(info.numeric_cols)
            a = self._sample_literal(info.name, column)
            b = self._sample_literal(info.name, column)
            low, high = sorted([a, b], key=lambda l: l.value)
            return ast.BetweenExpr(ref(column), low, high,
                                   negated=self.rng.random() < 0.15)
        if shape == "num_in":
            column = self.rng.choice(info.numeric_cols)
            values = tuple(
                self._sample_literal(info.name, column)
                for _ in range(self.rng.randint(2, 4))
            )
            return ast.InExpr(ref(column), values=values,
                              negated=self.rng.random() < 0.2)
        if shape == "str_eq":
            column = self.rng.choice(info.str_cols)
            return ast.BinaryOp("=", ref(column), self._sample_literal(info.name, column))
        if shape == "str_like":
            column = self.rng.choice(info.str_cols)
            literal = self._sample_literal(info.name, column)
            text = str(literal.value)
            safe = "".join(ch for ch in text if ch.isalnum() or ch == " ")
            if len(safe) < 2:
                return ast.BinaryOp("=", ref(column), literal)
            if self.rng.random() < 0.5:
                pattern = safe[: self.rng.randint(1, min(4, len(safe)))] + "%"
            else:
                pattern = "%" + safe[-self.rng.randint(1, min(4, len(safe))):]
            return ast.LikeExpr(ref(column), pattern,
                                negated=self.rng.random() < 0.15)
        # date_cmp
        column = self.rng.choice(info.date_cols)
        op = self.rng.choice(["<", "<=", ">", ">=", "="])
        return ast.BinaryOp(op, ref(column), self._sample_literal(info.name, column))

    def _and_all(self, conjuncts: list[ast.Expr]) -> ast.Expr | None:
        expr = None
        for conjunct in conjuncts:
            expr = conjunct if expr is None else ast.BinaryOp("and", expr, conjunct)
        return expr

    # -- subquery bodies ----------------------------------------------------

    def _pick_correlation(self, outer_table: str):
        """A (outer_col, inner_table, inner_col) equality correlation."""
        pairs = []
        for a_table, a_col, b_table, b_col in JOIN_PAIRS:
            if a_table == outer_table and b_table != outer_table:
                pairs.append((a_col, b_table, b_col))
            elif b_table == outer_table and a_table != outer_table:
                pairs.append((b_col, a_table, a_col))
        return self.rng.choice(pairs) if pairs else None

    def _pick_ordered_correlation(self, outer_table: str, inner_table: str):
        """A same-kind (outer_col, inner_col) pair for non-eq correlation."""
        for a_table, a_col, b_table, b_col in ORDERED_PAIRS:
            if a_table == outer_table and b_table == inner_table:
                return a_col, b_col
            if b_table == outer_table and a_table == inner_table:
                return b_col, a_col
        return None

    def _inner_where(
        self,
        inner: _TableInfo,
        correlation: ast.Expr | None,
        extra_range: tuple[int, int] = (0, 2),
    ) -> ast.Expr | None:
        conjuncts: list[ast.Expr] = []
        if correlation is not None:
            conjuncts.append(correlation)
        for _ in range(self.rng.randint(*extra_range)):
            predicate = self._plain_predicate(inner, None)
            if predicate is not None:
                conjuncts.append(predicate)
        return self._and_all(conjuncts)

    def _subquery_where(
        self, outer: _TableInfo, depth: int
    ) -> tuple[ast.Expr | None, dict]:
        """The subquery conjunct of a WHERE-placement query."""
        kind = self.rng.choice(
            ["scalar", "scalar", "scalar", "exists", "in", "quantified"]
        )
        correlated = self.rng.random() > 0.12  # occasionally type-A/N
        picked = self._pick_correlation(outer.name) if correlated else None
        if picked is None:
            correlated = False
            # fall back to any inner table != outer for the uncorrelated case
            inner_name = self.rng.choice(
                [n for n in self.tables if n != outer.name]
            )
            outer_col = inner_col = None
        else:
            outer_col, inner_name, inner_col = picked
        inner = self.tables[inner_name]
        features = {"kind": kind, "correlated": correlated, "depth": 1 if correlated else 0}

        correlation = None
        if correlated:
            correlation = ast.BinaryOp(
                "=", ast.ColumnRef(inner_col), ast.ColumnRef(outer_col)
            )
            ordered = self._pick_ordered_correlation(outer.name, inner_name)
            rider_roll = self.rng.random()
            if rider_roll < 0.18:
                # disjunctive correlation (Guravannavar): the equality
                # only constrains one arm, so the shape is non-unnestable
                # and must take the nested path
                if ordered is not None:
                    o_col, i_col = ordered
                    op = self.rng.choice(["<", "<=", ">", ">="])
                    arm: ast.Expr | None = ast.BinaryOp(
                        op, ast.ColumnRef(i_col), ast.ColumnRef(o_col)
                    )
                else:
                    arm = self._plain_predicate(inner, None)
                if arm is not None:
                    correlation = ast.BinaryOp("or", correlation, arm)
                    features["disjunctive_correlation"] = True
            elif ordered is not None and rider_roll < 0.38:
                # a non-equality correlation rides along (Q5 family)
                o_col, i_col = ordered
                op = self.rng.choice(["<", "<=", ">", ">=", "!="])
                correlation = ast.BinaryOp(
                    "and",
                    correlation,
                    ast.BinaryOp(op, ast.ColumnRef(i_col), ast.ColumnRef(o_col)),
                )
                features["ordered_correlation"] = op
        where = self._inner_where(inner, correlation)

        # depth 2: nest one more subquery inside the inner WHERE
        if correlated and depth >= 2:
            nested = self._nested_subquery(inner, outer)
            if nested is not None:
                where = nested if where is None else ast.BinaryOp("and", where, nested)
                features["depth"] = 2

        if kind == "scalar":
            agg, operand = self._scalar_shape(outer, inner, where)
            features["aggregate"] = agg
            return operand, features
        if kind == "exists":
            stmt = ast.SelectStmt(
                items=(ast.SelectItem(ast.Star()),),
                from_items=(ast.TableRef(inner_name),),
                where=where,
            )
            expr: ast.Expr = ast.ExistsExpr(stmt)
            if self.rng.random() < 0.3:
                expr = ast.UnaryOp("not", expr)
                features["negated"] = True
            return expr, features
        if kind == "in":
            member_outer, member_inner = self._membership_pair(outer, inner)
            if member_outer is None:
                # no type-compatible pair: degrade to EXISTS
                stmt = ast.SelectStmt(
                    items=(ast.SelectItem(ast.Star()),),
                    from_items=(ast.TableRef(inner_name),),
                    where=where,
                )
                features["kind"] = "exists"
                return ast.ExistsExpr(stmt), features
            stmt = ast.SelectStmt(
                items=(ast.SelectItem(ast.ColumnRef(member_inner)),),
                from_items=(ast.TableRef(inner_name),),
                where=where,
            )
            negation_roll = self.rng.random()
            if negation_roll < 0.25:
                # NOT (x IN ...): same semantics as NOT IN, but the
                # negation arrives as a UnaryOp the unnester must unwrap
                # (or refuse) rather than as the InExpr flag
                features["not_wrapped"] = True
                return (
                    ast.UnaryOp(
                        "not",
                        ast.InExpr(
                            ast.ColumnRef(member_outer), query=stmt, negated=False
                        ),
                    ),
                    features,
                )
            return (
                ast.InExpr(
                    ast.ColumnRef(member_outer),
                    query=stmt,
                    negated=negation_roll < 0.5,
                ),
                features,
            )
        # quantified
        member_outer, member_inner = self._membership_pair(outer, inner)
        if member_outer is None:
            member_outer = self.rng.choice(outer.numeric_cols)
            member_inner = self.rng.choice(inner.numeric_cols)
        stmt = ast.SelectStmt(
            items=(ast.SelectItem(ast.ColumnRef(member_inner)),),
            from_items=(ast.TableRef(inner_name),),
            where=where,
        )
        op = self.rng.choice(_COMPARES)
        quantifier = self.rng.choice(["any", "all"])
        features["quantifier"] = f"{op} {quantifier}"
        return (
            ast.QuantifiedExpr(op, quantifier, ast.ColumnRef(member_outer), stmt),
            features,
        )

    def _membership_pair(self, outer: _TableInfo, inner: _TableInfo):
        """Type-compatible (outer_col, inner_col) for IN / quantified.

        Join-pair columns are preferred (hits happen); any same-kind
        numeric pair is the fallback.
        """
        for a_table, a_col, b_table, b_col in JOIN_PAIRS:
            if a_table == outer.name and b_table == inner.name:
                return a_col, b_col
            if b_table == outer.name and a_table == inner.name:
                return b_col, a_col
        if outer.int_cols and inner.int_cols:
            return self.rng.choice(outer.int_cols), self.rng.choice(inner.int_cols)
        if outer.dec_cols and inner.dec_cols:
            return self.rng.choice(outer.dec_cols), self.rng.choice(inner.dec_cols)
        return None, None

    def _scalar_shape(
        self, outer: _TableInfo, inner: _TableInfo, where: ast.Expr | None
    ) -> tuple[str, ast.Expr]:
        """An aggregate scalar subquery compared against the outer row."""
        agg = self.rng.choice(_AGGREGATES)
        if agg == "count" and self.rng.random() < 0.5:
            call = ast.FuncCall("count", star=True)
        else:
            target = self.rng.choice(inner.numeric_cols)
            call = ast.FuncCall(
                agg, (ast.ColumnRef(target),),
                distinct=(agg == "count" and self.rng.random() < 0.3),
            )
        stmt = ast.SelectStmt(
            items=(ast.SelectItem(call),),
            from_items=(ast.TableRef(inner.name),),
            where=where,
        )
        subquery: ast.Expr = ast.SubqueryExpr(stmt)
        if self.rng.random() < 0.2:
            factor = ast.Literal(self.rng.choice([0.2, 0.5, 2.0]), "decimal")
            subquery = ast.BinaryOp("*", factor, subquery)
        op = self.rng.choice(_COMPARES)
        if agg == "count":
            left: ast.Expr = ast.Literal(self.rng.randint(0, 4), "int")
        elif self.rng.random() < 0.6 and outer.numeric_cols:
            left = ast.ColumnRef(self.rng.choice(outer.numeric_cols))
        else:
            source = self.rng.choice(inner.numeric_cols)
            left = self._sample_literal(inner.name, source)
        return agg, ast.BinaryOp(op, left, subquery)

    def _nested_subquery(
        self, middle: _TableInfo, outermost: _TableInfo
    ) -> ast.Expr | None:
        """A depth-2 subquery inside ``middle``'s WHERE.

        Correlates to the middle table, or — the Figure 6 shape — to the
        outermost block's table.
        """
        corr_to = middle if self.rng.random() < 0.7 else outermost
        picked = self._pick_correlation(corr_to.name)
        if picked is None:
            return None
        outer_col, inner_name, inner_col = picked
        if inner_name in (middle.name, outermost.name):
            return None
        inner = self.tables[inner_name]
        correlation = ast.BinaryOp(
            "=", ast.ColumnRef(inner_col), ast.ColumnRef(outer_col)
        )
        where = self._inner_where(inner, correlation, extra_range=(0, 1))
        if self.rng.random() < 0.5:
            stmt = ast.SelectStmt(
                items=(ast.SelectItem(ast.Star()),),
                from_items=(ast.TableRef(inner_name),),
                where=where,
            )
            return ast.ExistsExpr(stmt)
        agg = self.rng.choice(["min", "max", "count"])
        call = (
            ast.FuncCall("count", star=True)
            if agg == "count"
            else ast.FuncCall(agg, (ast.ColumnRef(self.rng.choice(inner.numeric_cols)),))
        )
        stmt = ast.SelectStmt(
            items=(ast.SelectItem(call),),
            from_items=(ast.TableRef(inner_name),),
            where=where,
        )
        op = self.rng.choice(["<", "<=", ">", ">="]) if agg != "count" else ">"
        if agg == "count":
            left: ast.Expr = ast.Literal(0, "int")
        else:
            left = ast.ColumnRef(self.rng.choice(middle.numeric_cols))
        return ast.BinaryOp(op, left, ast.SubqueryExpr(stmt))

    # -- whole-query shapes --------------------------------------------------

    def _outer_table(self) -> _TableInfo:
        # weight toward small outer tables: the rowstore oracle pays
        # outer_rows * inner_rows per correlated subquery
        weighted = (
            ["region", "nation", "supplier", "customer"] * 3
            + ["orders", "part"] * 2
            + ["partsupp", "lineitem"]
        )
        return self.tables[self.rng.choice(weighted)]

    def generate(self) -> FuzzQuery:
        placement = self.rng.choices(
            ["where", "select", "having"], weights=[0.7, 0.15, 0.15]
        )[0]
        outer = self._outer_table()
        if placement == "where":
            stmt, features = self._where_query(outer)
        elif placement == "select":
            stmt, features = self._select_query(outer)
        else:
            stmt, features = self._having_query(outer)
        features["placement"] = placement
        features["outer"] = outer.name
        return FuzzQuery(self.seed, stmt, unparse(stmt), features)

    def _where_query(self, outer: _TableInfo):
        shape_roll = self.rng.random()
        if shape_roll < 0.22:
            return self._multi_subquery_query(outer)
        if shape_roll < 0.38:
            return self._both_sides_query(outer)
        depth = 2 if self.rng.random() < 0.15 else 1
        subquery_conjunct, features = self._subquery_where(outer, depth)
        conjuncts: list[ast.Expr] = []
        for _ in range(self.rng.randint(0, 2)):
            predicate = self._plain_predicate(outer, None)
            if predicate is not None:
                conjuncts.append(predicate)
        # plain predicates first: the rowstore applies conjuncts in
        # order, so cheap filters bound the per-tuple subquery loop
        conjuncts.append(subquery_conjunct)
        return self._finish_where_stmt(outer, self._and_all(conjuncts)), features

    def _multi_subquery_query(self, outer: _TableInfo):
        """Two independent SUBQs in one WHERE, AND- or OR-combined.

        This is the shape that drives the multi-subquery evaluator
        (nested loops per SUBQ, per-subquery caches) and — OR-combined —
        the unnester's one-SUBQ-per-conjunct refusal.
        """
        first, f1 = self._subquery_where(outer, 1)
        second, f2 = self._subquery_where(outer, 1)
        combiner = "or" if self.rng.random() < 0.5 else "and"
        features = {
            "kind": f"{f1['kind']}+{f2['kind']}",
            "correlated": f1["correlated"] or f2["correlated"],
            "depth": max(f1["depth"], f2["depth"]),
            "num_subqueries": 2,
            "combiner": combiner,
        }
        conjuncts: list[ast.Expr] = []
        for _ in range(self.rng.randint(0, 1)):
            predicate = self._plain_predicate(outer, None)
            if predicate is not None:
                conjuncts.append(predicate)
        if combiner == "or":
            conjuncts.append(ast.BinaryOp("or", first, second))
        else:
            conjuncts.extend([first, second])
        return self._finish_where_stmt(outer, self._and_all(conjuncts)), features

    def _both_sides_query(self, outer: _TableInfo):
        """Scalar subqueries on *both* sides of one comparison."""
        left, left_correlated = self._scalar_operand(outer)
        right, right_correlated = self._scalar_operand(outer)
        op = self.rng.choice(_COMPARES)
        correlated = left_correlated or right_correlated
        features = {
            "kind": "scalar+scalar",
            "correlated": correlated,
            "depth": 1 if correlated else 0,
            "num_subqueries": 2,
            "both_sides": True,
        }
        conjuncts: list[ast.Expr] = []
        for _ in range(self.rng.randint(0, 1)):
            predicate = self._plain_predicate(outer, None)
            if predicate is not None:
                conjuncts.append(predicate)
        conjuncts.append(ast.BinaryOp(op, left, right))
        return self._finish_where_stmt(outer, self._and_all(conjuncts)), features

    def _scalar_operand(self, outer: _TableInfo) -> tuple[ast.Expr, bool]:
        """One aggregate scalar subquery usable as a comparison operand."""
        picked = self._pick_correlation(outer.name)
        correlated = picked is not None and self.rng.random() > 0.25
        if correlated:
            outer_col, inner_name, inner_col = picked
            correlation: ast.Expr | None = ast.BinaryOp(
                "=", ast.ColumnRef(inner_col), ast.ColumnRef(outer_col)
            )
        else:
            inner_name = self.rng.choice([n for n in self.tables if n != outer.name])
            correlation = None
        inner = self.tables[inner_name]
        where = self._inner_where(inner, correlation, extra_range=(0, 1))
        agg = self.rng.choice(_AGGREGATES)
        if agg == "count":
            call = ast.FuncCall("count", star=True)
        else:
            call = ast.FuncCall(
                agg, (ast.ColumnRef(self.rng.choice(inner.numeric_cols)),)
            )
        stmt = ast.SelectStmt(
            items=(ast.SelectItem(call),),
            from_items=(ast.TableRef(inner_name),),
            where=where,
        )
        expr: ast.Expr = ast.SubqueryExpr(stmt)
        if self.rng.random() < 0.2:
            factor = ast.Literal(self.rng.choice([0.2, 0.5, 2.0]), "decimal")
            expr = ast.BinaryOp("*", factor, expr)
        return expr, correlated

    def _finish_where_stmt(
        self, outer: _TableInfo, where: ast.Expr | None
    ) -> ast.SelectStmt:
        columns = self.rng.sample(
            outer.numeric_cols, k=min(self.rng.randint(1, 3), len(outer.numeric_cols))
        )
        items = tuple(ast.SelectItem(ast.ColumnRef(c)) for c in columns)
        distinct = self.rng.random() < 0.1
        order_by = ()
        if self.rng.random() < 0.3:
            order_by = tuple(
                ast.OrderItem(ast.ColumnRef(c), descending=self.rng.random() < 0.5)
                for c in columns
            )
        return ast.SelectStmt(
            items=items,
            from_items=(ast.TableRef(outer.name),),
            where=where,
            order_by=order_by,
            distinct=distinct,
        )

    def _select_query(self, outer: _TableInfo):
        """A scalar subquery in the SELECT list."""
        picked = self._pick_correlation(outer.name)
        features: dict = {"kind": "scalar", "depth": 1}
        if picked is None or self.rng.random() < 0.1:
            inner_name = self.rng.choice([n for n in self.tables if n != outer.name])
            correlation = None
            features["correlated"] = False
            features["depth"] = 0
        else:
            outer_col, inner_name, inner_col = picked
            correlation = ast.BinaryOp(
                "=", ast.ColumnRef(inner_col), ast.ColumnRef(outer_col)
            )
            features["correlated"] = True
        inner = self.tables[inner_name]
        where = self._inner_where(inner, correlation, extra_range=(0, 1))
        agg = self.rng.choice(_AGGREGATES)
        features["aggregate"] = agg
        if agg == "count" and self.rng.random() < 0.5:
            call = ast.FuncCall("count", star=True)
        else:
            call = ast.FuncCall(agg, (ast.ColumnRef(self.rng.choice(inner.numeric_cols)),))
        sub = ast.SubqueryExpr(
            ast.SelectStmt(
                items=(ast.SelectItem(call),),
                from_items=(ast.TableRef(inner_name),),
                where=where,
            )
        )
        sub_item: ast.Expr = sub
        if self.rng.random() < 0.2:
            sub_item = ast.BinaryOp(
                "*", ast.Literal(2, "int"), sub
            )
        key = self.rng.choice(outer.numeric_cols)
        items = (
            ast.SelectItem(ast.ColumnRef(key)),
            ast.SelectItem(sub_item, alias="v"),
        )
        conjuncts = []
        for _ in range(self.rng.randint(0, 1)):
            predicate = self._plain_predicate(outer, None)
            if predicate is not None:
                conjuncts.append(predicate)
        stmt = ast.SelectStmt(
            items=items,
            from_items=(ast.TableRef(outer.name),),
            where=self._and_all(conjuncts),
        )
        return stmt, features

    def _having_query(self, outer: _TableInfo):
        """GROUP BY with a scalar subquery in HAVING, correlated on the
        group key (the shape the planner supports above Aggregate)."""
        picked = self._pick_correlation(outer.name)
        features: dict = {"kind": "scalar", "depth": 1}
        group_col = None
        if picked is not None:
            outer_col, inner_name, inner_col = picked
            group_col = outer_col
        if picked is None or self.rng.random() < 0.15:
            inner_name = self.rng.choice([n for n in self.tables if n != outer.name])
            inner_col = None
            features["correlated"] = False
            features["depth"] = 0
            if group_col is None:
                group_col = self.rng.choice(outer.int_cols or outer.numeric_cols)
        else:
            features["correlated"] = True
        inner = self.tables[inner_name]
        correlation = (
            ast.BinaryOp("=", ast.ColumnRef(inner_col), ast.ColumnRef(group_col))
            if features["correlated"]
            else None
        )
        where = self._inner_where(inner, correlation, extra_range=(0, 1))
        inner_agg = self.rng.choice(_AGGREGATES)
        features["aggregate"] = inner_agg
        if inner_agg == "count":
            call = ast.FuncCall("count", star=True)
        else:
            call = ast.FuncCall(
                inner_agg, (ast.ColumnRef(self.rng.choice(inner.numeric_cols)),)
            )
        sub = ast.SubqueryExpr(
            ast.SelectStmt(
                items=(ast.SelectItem(call),),
                from_items=(ast.TableRef(inner_name),),
                where=where,
            )
        )
        outer_agg_col = self.rng.choice(outer.numeric_cols)
        outer_agg = self.rng.choice(["min", "max", "sum", "avg", "count"])
        agg_call = ast.FuncCall(outer_agg, (ast.ColumnRef(outer_agg_col),))
        having: ast.Expr = ast.BinaryOp(self.rng.choice(_COMPARES), agg_call, sub)
        if self.rng.random() < 0.3:
            having = ast.BinaryOp(
                "and",
                ast.BinaryOp(">", ast.FuncCall("count", star=True), ast.Literal(0, "int")),
                having,
            )
        items = (
            ast.SelectItem(ast.ColumnRef(group_col)),
            ast.SelectItem(ast.FuncCall(outer_agg, (ast.ColumnRef(outer_agg_col),)), alias="m"),
        )
        stmt = ast.SelectStmt(
            items=items,
            from_items=(ast.TableRef(outer.name),),
            where=None,
            group_by=(ast.ColumnRef(group_col),),
            having=having,
        )
        return stmt, features


def generate_query(catalog: Catalog, seed: int, index: int) -> FuzzQuery:
    """The ``index``-th query of a fuzz run seeded with ``seed``."""
    return QueryGenerator(catalog, (seed, index)).generate()
