"""Differential execution: oracle vs nested vs unnested, per config.

Each query runs through three executors that share no execution code:

* the **row-store oracle** (:class:`repro.baselines.RowstoreEngine`),
  a tuple-at-a-time Volcano interpreter;
* **NestGPU nested** — the paper's iterative subquery loops — once per
  configuration of the five optimizations (pools, index, cache,
  vectorization, invariant extraction);
* **NestGPU unnested** — Kim's rewrite — per configuration as well;
  queries the rewriter cannot handle are recorded as ``skipped``
  (:class:`~repro.errors.UnnestingError` is the expected, documented
  outcome for the paper's Query-5 family);
* **NestGPU auto** — once per query, on the matrix's lead (all-on)
  configuration — exercising the cost model's nested-vs-unnested
  choice and its fallback when the rewriter refuses.

Row sets are compared order-insensitively with float tolerance; NaN is
the engines' NULL and is canonicalised to a sentinel so that
NULL == NULL for comparison purposes (SQL would say unknown, but both
engines must *agree* on where NULLs appear).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..baselines.rowstore import RowstoreEngine
from ..core import NestGPU
from ..engine import EngineOptions
from ..errors import ReproError, UnnestingError
from ..storage import Catalog

_NULL = "NULL"
_FLAGS = (
    "use_memory_pools",
    "use_index",
    "use_cache",
    "use_vectorization",
    "use_invariant_extraction",
)


def config_matrix(name: str = "full") -> list[tuple[str, EngineOptions]]:
    """Named optimization-configuration matrices.

    * ``full`` — all-on, the fused leg, each optimization individually
      off, all-off (8 configurations: every single-flag ablation plus
      kernel fusion forced on).
    * ``minimal`` — all-on, fused, and all-off.
    * ``single`` — just the default (all-on) configuration.

    The ``fused`` leg forces :attr:`EngineOptions.fusion` to ``"on"``
    with every optimization at its default, so each fuzzed query is a
    three-way differential — oracle vs unfused vs fused — and any row
    divergence introduced by a fused launch chain fails the campaign.
    """
    all_on = ("all-on", EngineOptions())
    fused = ("fused", EngineOptions(fusion="on"))
    if name == "single":
        return [all_on]
    if name == "minimal":
        return [all_on, fused, ("all-off", EngineOptions.all_off())]
    if name != "full":
        raise ValueError(f"unknown config matrix {name!r}")
    configs = [all_on, fused]
    for flag in _FLAGS:
        label = "no-" + flag.replace("use_", "").replace("_", "-")
        configs.append((label, EngineOptions(**{flag: False})))
    configs.append(("all-off", EngineOptions.all_off()))
    return configs


def canon_rows(rows, ndigits: int = 6) -> list[tuple]:
    """Order-insensitive canonical form: floats rounded, NaN -> NULL."""
    out = []
    for row in rows:
        canon = []
        for value in row:
            try:
                number = float(value)
            except (TypeError, ValueError):
                canon.append(str(value))
                continue
            if math.isnan(number):
                canon.append(_NULL)
            else:
                canon.append(round(number, ndigits))
        out.append(tuple(canon))
    return sorted(out, key=repr)


def rows_match(a: list[tuple], b: list[tuple],
               rel_tol: float = 1e-6, abs_tol: float = 1e-6) -> bool:
    """Whether two canonical row sets agree within float tolerance."""
    if len(a) != len(b):
        return False
    if a == b:
        return True
    for row_a, row_b in zip(a, b):
        if len(row_a) != len(row_b):
            return False
        for va, vb in zip(row_a, row_b):
            if va == vb:
                continue
            if isinstance(va, float) and isinstance(vb, float):
                if math.isclose(va, vb, rel_tol=rel_tol, abs_tol=abs_tol):
                    continue
            return False
    return True


@dataclass
class Outcome:
    """One engine-configuration execution of one query."""

    engine: str  # 'nested' | 'unnested'
    config: str
    status: str  # 'ok' | 'mismatch' | 'skipped' | 'error'
    detail: str = ""
    rows: list = field(default_factory=list)


@dataclass
class Report:
    """The differential verdict for one query."""

    sql: str
    oracle_rows: list
    outcomes: list[Outcome] = field(default_factory=list)

    @property
    def mismatches(self) -> list[Outcome]:
        return [o for o in self.outcomes if o.status == "mismatch"]

    @property
    def errors(self) -> list[Outcome]:
        return [o for o in self.outcomes if o.status == "error"]

    @property
    def skipped(self) -> list[Outcome]:
        return [o for o in self.outcomes if o.status == "skipped"]

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.errors

    def summary(self) -> str:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))


def _diff_detail(oracle: list, got: list, limit: int = 3) -> str:
    missing = [r for r in oracle if r not in got][:limit]
    extra = [r for r in got if r not in oracle][:limit]
    parts = [f"oracle={len(oracle)} rows, engine={len(got)} rows"]
    if missing:
        parts.append(f"missing={missing}")
    if extra:
        parts.append(f"extra={extra}")
    return "; ".join(parts)


class DifferentialRunner:
    """Runs queries through oracle + engine matrix and compares rows.

    The engine factories are injectable so the test-suite can wire a
    deliberately broken engine and prove the harness detects it.

    With ``reuse_sessions=True`` each configuration gets one standing
    :class:`~repro.serve.EngineSession` reused for every query of the
    campaign — plan cache, resident columns and subquery indexes all
    persist, so the fuzzer doubles as a soak test of the session
    machinery: any state leaking between queries shows up as a
    differential mismatch.  Ignored when a custom ``engine_factory``
    is injected.
    """

    def __init__(
        self,
        catalog: Catalog,
        configs: list[tuple[str, EngineOptions]] | None = None,
        oracle_factory=None,
        engine_factory=None,
        reuse_sessions: bool = False,
    ):
        self.catalog = catalog
        self.configs = configs or config_matrix("full")
        self._oracle_factory = oracle_factory or RowstoreEngine
        self._engine_factory = engine_factory or (
            lambda catalog, options: NestGPU(catalog, options=options)
        )
        self._reuse = reuse_sessions and engine_factory is None
        self._sessions: dict[str, object] = {}

    def _get_engine(self, config_name: str, options: EngineOptions):
        if not self._reuse:
            return self._engine_factory(self.catalog, options)
        session = self._sessions.get(config_name)
        if session is None:
            from ..serve import EngineSession

            session = EngineSession(self.catalog, options=options)
            self._sessions[config_name] = session
        return session

    def close(self) -> None:
        """Dispose any standing sessions (idempotent)."""
        for session in self._sessions.values():
            session.close()
        self._sessions.clear()

    def run(self, sql: str) -> Report:
        oracle = canon_rows(self._oracle_factory(self.catalog).execute(sql).rows)
        report = Report(sql=sql, oracle_rows=oracle)
        for position, (config_name, options) in enumerate(self.configs):
            engine = self._get_engine(config_name, options)
            # auto only on the matrix's lead (all-on) config: it runs
            # the cost model's measured plans on top of both methods, so
            # once per query is enough to cover the fallback decision
            modes = ("nested", "unnested", "auto") if position == 0 else (
                "nested", "unnested"
            )
            for mode in modes:
                report.outcomes.append(
                    self._run_one(engine, sql, mode, config_name, oracle)
                )
        return report

    def _run_one(self, engine, sql: str, mode: str, config: str,
                 oracle: list) -> Outcome:
        try:
            result = engine.execute(sql, mode=mode)
        except UnnestingError as exc:
            if mode == "unnested":
                return Outcome(mode, config, "skipped", str(exc))
            return Outcome(mode, config, "error", f"{type(exc).__name__}: {exc}")
        except ReproError as exc:
            return Outcome(mode, config, "error", f"{type(exc).__name__}: {exc}")
        rows = canon_rows(result.rows)
        if rows_match(oracle, rows):
            return Outcome(mode, config, "ok")
        return Outcome(mode, config, "mismatch", _diff_detail(oracle, rows), rows)
