"""Simulated GPU substrate: device, memory pools, primitive kernels."""

from .device import Device
from .memory import MemoryPool, PoolMark, PoolSet, RawDeviceAllocator
from .spec import DeviceSpec
from .stats import ExecutionStats

__all__ = [
    "Device",
    "DeviceSpec",
    "ExecutionStats",
    "MemoryPool",
    "PoolMark",
    "PoolSet",
    "RawDeviceAllocator",
]
