"""Simulated GPU substrate: device, memory pools, primitive kernels."""

from .device import Device
from .group import DeviceGroup
from .memory import MemoryPool, PoolMark, PoolSet, RawDeviceAllocator
from .spec import DeviceSpec, InterconnectSpec, LinkSpec
from .stats import ExecutionStats

__all__ = [
    "Device",
    "DeviceGroup",
    "DeviceSpec",
    "ExecutionStats",
    "InterconnectSpec",
    "LinkSpec",
    "MemoryPool",
    "PoolMark",
    "PoolSet",
    "RawDeviceAllocator",
]
