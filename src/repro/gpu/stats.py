"""Execution statistics accumulated on the simulated device clock."""

from __future__ import annotations

from dataclasses import dataclass, field, fields

#: Fields that are instantaneous *levels* (high-water marks), not
#: accumulated flows.  ``minus`` carries the later snapshot's value
#: through instead of subtracting: a peak is a maximum over the whole
#: run, so the peak *between* two snapshots is not recoverable from the
#: endpoints — the later high-water mark is the conservative answer.
_LEVEL_FIELDS = frozenset({"peak_device_bytes"})


@dataclass
class ExecutionStats:
    """Counters and modelled time for one span of device activity.

    All times are nanoseconds of *modelled* device/bus time, not
    wall-clock of the Python process.
    """

    kernel_launches: int = 0
    kernel_time_ns: float = 0.0
    #: fused scopes charged (each counts once in ``kernel_launches``)
    #: and the primitive kernels they absorbed — ``fused_kernels -
    #: fused_launches`` is the number of launches fusion saved.
    fused_launches: int = 0
    fused_kernels: int = 0
    materialize_bytes: int = 0
    materialize_time_ns: float = 0.0
    h2d_bytes: int = 0
    h2d_time_ns: float = 0.0
    d2h_bytes: int = 0
    d2h_time_ns: float = 0.0
    malloc_calls: int = 0
    malloc_time_ns: float = 0.0
    peer_bytes: int = 0
    peer_time_ns: float = 0.0
    peak_device_bytes: int = 0
    kernel_time_by_tag: dict[str, float] = field(default_factory=dict)
    launches_by_tag: dict[str, int] = field(default_factory=dict)

    @property
    def total_ns(self) -> float:
        return (
            self.kernel_time_ns
            + self.materialize_time_ns
            + self.h2d_time_ns
            + self.d2h_time_ns
            + self.malloc_time_ns
            + self.peer_time_ns
        )

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6

    @property
    def transfer_time_ns(self) -> float:
        return self.h2d_time_ns + self.d2h_time_ns

    @property
    def transfer_fraction(self) -> float:
        """Share of total time spent moving data over PCIe."""
        total = self.total_ns
        return self.transfer_time_ns / total if total else 0.0

    @property
    def interconnect_fraction(self) -> float:
        """Share of total time spent on device-to-device peer links."""
        total = self.total_ns
        return self.peer_time_ns / total if total else 0.0

    def copy(self) -> "ExecutionStats":
        clone = ExecutionStats()
        for spec in fields(self):
            value = getattr(self, spec.name)
            setattr(
                clone, spec.name,
                dict(value) if isinstance(value, dict) else value,
            )
        return clone

    def minus(self, earlier: "ExecutionStats") -> "ExecutionStats":
        """The activity between ``earlier`` and this snapshot.

        Driven by ``dataclasses.fields()`` so a newly added counter is
        diffed automatically: scalars subtract, per-tag dicts subtract
        tag-wise (zero deltas dropped), and level fields
        (``_LEVEL_FIELDS``) keep this snapshot's value.
        """
        diff = ExecutionStats()
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name in _LEVEL_FIELDS:
                setattr(diff, spec.name, value)
            elif isinstance(value, dict):
                delta_map = {}
                prior = getattr(earlier, spec.name)
                for tag, amount in value.items():
                    delta = amount - prior.get(tag, type(amount)())
                    if delta:
                        delta_map[tag] = delta
                setattr(diff, spec.name, delta_map)
            else:
                setattr(diff, spec.name, value - getattr(earlier, spec.name))
        return diff

    def accumulate(self, other: "ExecutionStats") -> None:
        """Fold ``other`` into this snapshot (for device-group merges).

        Flows add, per-tag dicts add tag-wise, and level fields take
        the maximum — the group-wide peak is the worst single device
        since shards never share one memory.
        """
        for spec in fields(self):
            value = getattr(other, spec.name)
            if spec.name in _LEVEL_FIELDS:
                setattr(self, spec.name, max(getattr(self, spec.name), value))
            elif isinstance(value, dict):
                mine = getattr(self, spec.name)
                for tag, amount in value.items():
                    mine[tag] = mine.get(tag, type(amount)()) + amount
            else:
                setattr(self, spec.name, getattr(self, spec.name) + value)

    def to_dict(self) -> dict:
        """Every field, dicts copied — for metrics dumps and JSON."""
        out = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            out[spec.name] = dict(value) if isinstance(value, dict) else value
        return out

    def breakdown(self) -> dict[str, float]:
        """Milliseconds by category, for reports."""
        return {
            "kernel_ms": self.kernel_time_ns / 1e6,
            "materialize_ms": self.materialize_time_ns / 1e6,
            "h2d_ms": self.h2d_time_ns / 1e6,
            "d2h_ms": self.d2h_time_ns / 1e6,
            "malloc_ms": self.malloc_time_ns / 1e6,
            "peer_ms": self.peer_time_ns / 1e6,
            "total_ms": self.total_ms,
        }
