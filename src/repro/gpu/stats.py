"""Execution statistics accumulated on the simulated device clock."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExecutionStats:
    """Counters and modelled time for one span of device activity.

    All times are nanoseconds of *modelled* device/bus time, not
    wall-clock of the Python process.
    """

    kernel_launches: int = 0
    kernel_time_ns: float = 0.0
    materialize_bytes: int = 0
    materialize_time_ns: float = 0.0
    h2d_bytes: int = 0
    h2d_time_ns: float = 0.0
    d2h_bytes: int = 0
    d2h_time_ns: float = 0.0
    malloc_calls: int = 0
    malloc_time_ns: float = 0.0
    peak_device_bytes: int = 0
    kernel_time_by_tag: dict[str, float] = field(default_factory=dict)
    launches_by_tag: dict[str, int] = field(default_factory=dict)

    @property
    def total_ns(self) -> float:
        return (
            self.kernel_time_ns
            + self.materialize_time_ns
            + self.h2d_time_ns
            + self.d2h_time_ns
            + self.malloc_time_ns
        )

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6

    @property
    def transfer_time_ns(self) -> float:
        return self.h2d_time_ns + self.d2h_time_ns

    @property
    def transfer_fraction(self) -> float:
        """Share of total time spent moving data over PCIe."""
        total = self.total_ns
        return self.transfer_time_ns / total if total else 0.0

    def copy(self) -> "ExecutionStats":
        clone = ExecutionStats(**{
            k: v for k, v in self.__dict__.items()
            if k not in ("kernel_time_by_tag", "launches_by_tag")
        })
        clone.kernel_time_by_tag = dict(self.kernel_time_by_tag)
        clone.launches_by_tag = dict(self.launches_by_tag)
        return clone

    def minus(self, earlier: "ExecutionStats") -> "ExecutionStats":
        """The activity between ``earlier`` and this snapshot."""
        diff = ExecutionStats(
            kernel_launches=self.kernel_launches - earlier.kernel_launches,
            kernel_time_ns=self.kernel_time_ns - earlier.kernel_time_ns,
            materialize_bytes=self.materialize_bytes - earlier.materialize_bytes,
            materialize_time_ns=self.materialize_time_ns - earlier.materialize_time_ns,
            h2d_bytes=self.h2d_bytes - earlier.h2d_bytes,
            h2d_time_ns=self.h2d_time_ns - earlier.h2d_time_ns,
            d2h_bytes=self.d2h_bytes - earlier.d2h_bytes,
            d2h_time_ns=self.d2h_time_ns - earlier.d2h_time_ns,
            malloc_calls=self.malloc_calls - earlier.malloc_calls,
            malloc_time_ns=self.malloc_time_ns - earlier.malloc_time_ns,
            peak_device_bytes=self.peak_device_bytes,
        )
        for tag, value in self.kernel_time_by_tag.items():
            delta = value - earlier.kernel_time_by_tag.get(tag, 0.0)
            if delta:
                diff.kernel_time_by_tag[tag] = delta
        for tag, value in self.launches_by_tag.items():
            delta = value - earlier.launches_by_tag.get(tag, 0)
            if delta:
                diff.launches_by_tag[tag] = delta
        return diff

    def breakdown(self) -> dict[str, float]:
        """Milliseconds by category, for reports."""
        return {
            "kernel_ms": self.kernel_time_ns / 1e6,
            "materialize_ms": self.materialize_time_ns / 1e6,
            "h2d_ms": self.h2d_time_ns / 1e6,
            "d2h_ms": self.d2h_time_ns / 1e6,
            "malloc_ms": self.malloc_time_ns / 1e6,
            "total_ms": self.total_ms,
        }
