"""A group of simulated devices joined by a modelled interconnect.

Each member is an ordinary :class:`~repro.gpu.device.Device` with its
own clock, memory accounting and stats; nothing about the single-device
path changes.  The group adds the one thing N devices need that one
device does not: peer transfers.  ``transfer(src, dst, nbytes)``
charges the link time on *both* endpoint clocks (sender DMA and
receiver DMA are busy for the copy) and tallies per-pair traffic for
reports.

Time on a group is scatter-gather parallel: the devices' clocks advance
independently, and a barrier (an exchange, the gather) completes when
the *slowest* participant does — ``makespan_ns`` over a set of
snapshots is the max of their totals, not the sum.
"""

from __future__ import annotations

from .device import Device
from .spec import DeviceSpec, InterconnectSpec
from .stats import ExecutionStats


class DeviceGroup:
    """N modelled devices plus the fabric between them.

    Args:
        spec: the per-member device spec (a homogeneous group, like a
            real multi-GPU node).
        size: number of devices (>= 1).
        interconnect: the peer fabric; defaults to PCIe peer-to-peer.
        tracer: optional tracer shared by every member.
    """

    def __init__(self, spec: DeviceSpec, size: int,
                 interconnect: InterconnectSpec | None = None, tracer=None):
        if size < 1:
            raise ValueError("device group size must be >= 1")
        self.spec = spec
        self.interconnect = interconnect or InterconnectSpec.pcie_p2p()
        self.devices = [Device(spec, tracer=tracer) for _ in range(size)]
        #: accumulated peer traffic, {(src, dst): bytes}
        self.pair_bytes: dict[tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, index: int) -> Device:
        return self.devices[index]

    def __iter__(self):
        return iter(self.devices)

    # -- peer transfers -------------------------------------------------

    def transfer(self, src: int, dst: int, nbytes: int) -> float:
        """Charge a peer copy from device ``src`` to device ``dst``.

        Returns the link time; both endpoint clocks advance by it.
        """
        if src == dst:
            return 0.0
        link = self.interconnect.link(src, dst)
        time_ns = self.devices[src].transfer_peer(nbytes, link, peer=dst)
        self.devices[dst].transfer_peer(nbytes, link, peer=src)
        self.pair_bytes[(src, dst)] = (
            self.pair_bytes.get((src, dst), 0) + nbytes
        )
        return time_ns

    # -- bookkeeping ----------------------------------------------------

    def reset(self, rebase_peak: bool = False) -> None:
        """Reset every member's clock *independently*.

        Each device rebases its own high-water mark from its own
        standing residency — shard k's peak never leaks into shard
        j's stats (they are separate memories).
        """
        for device in self.devices:
            device.reset(rebase_peak=rebase_peak)

    def snapshots(self) -> list[ExecutionStats]:
        """Per-device stat copies, in device order."""
        return [device.snapshot() for device in self.devices]

    def merged_stats(self) -> ExecutionStats:
        """Group-wide totals: flows add, peaks take the worst device."""
        merged = ExecutionStats()
        for device in self.devices:
            merged.accumulate(device.stats)
        return merged

    @staticmethod
    def makespan_ns(snapshots: list[ExecutionStats]) -> float:
        """Completion time of a scatter-gather phase: the slowest clock."""
        return max((snap.total_ns for snap in snapshots), default=0.0)

    def interconnect_bytes(self) -> int:
        """Total bytes moved over peer links (each copy counted once)."""
        return sum(self.pair_bytes.values())
