"""Primitive GPU kernels.

Relational operators are dismantled into the primitives below, mirroring
the structure the paper describes (scan, prefix-sum, scatter,
materialise, hash build/probe, segmented reduce, sort).  Each primitive
performs the real computation with numpy and charges the device clock
for one kernel launch over its input size; ``work`` factors account for
kernels that do more memory traffic per element (hash build, sort).

All primitives are pure with respect to their inputs — they allocate
and return fresh arrays.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..errors import ExecutionError
from .device import Device

_COMPARE_OPS = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def _log_work(n: int) -> float:
    return max(1.0, math.log2(n)) if n > 1 else 1.0


# ---------------------------------------------------------------------------
# kernel fusion
# ---------------------------------------------------------------------------


@contextmanager
def fused(device: Device, tag: str):
    """Fuse every kernel launched in the block into ONE modelled launch.

    The numpy computation of each primitive runs unchanged (results
    stay bit-identical); only the charging changes — the block pays a
    single launch overhead plus the combined iteration work, and the
    device records it under ``tag`` with ``fused_launches`` /
    ``fused_kernels`` accounting.  Nested ``fused`` blocks flatten into
    the outermost scope.
    """
    scope = device.begin_fused(tag)
    try:
        yield
    finally:
        device.end_fused(scope)


def fused_compact(device: Device, mask: np.ndarray) -> np.ndarray:
    """The prefix-sum → scatter compaction tail as one fused launch."""
    with fused(device, "fused_compact"):
        return compact(device, mask)


def fused_select(
    device: Device, masks: list[np.ndarray], tag: str = "fused_select"
) -> np.ndarray:
    """AND a predicate-mask chain and compact it in one fused launch.

    The fused twin of the unfused selection pipeline (k compare kernels
    → k-1 ``logical_and`` → prefix-sum → scatter): callers evaluate the
    per-predicate masks inside an enclosing :func:`fused` scope and the
    whole chain charges a single launch.
    """
    if not masks:
        raise ExecutionError("fused_select requires at least one mask")
    with fused(device, tag):
        combined = masks[0]
        for mask in masks[1:]:
            combined = logical_and(device, combined, mask)
        return compact(device, combined)


# ---------------------------------------------------------------------------
# scans and maps
# ---------------------------------------------------------------------------


def compare_scalar(device: Device, data: np.ndarray, op: str, value) -> np.ndarray:
    """Elementwise ``data <op> value`` producing a 0/1 mask."""
    try:
        func = _COMPARE_OPS[op]
    except KeyError:
        raise ExecutionError(f"unknown comparison operator {op!r}") from None
    device.launch("scan_compare", len(data))
    return func(data, value)


def compare_arrays(device: Device, left: np.ndarray, right: np.ndarray, op: str) -> np.ndarray:
    """Elementwise ``left <op> right`` over two aligned columns."""
    try:
        func = _COMPARE_OPS[op]
    except KeyError:
        raise ExecutionError(f"unknown comparison operator {op!r}") from None
    device.launch("scan_compare", len(left), work=2.0)
    return func(left, right)


def isin(device: Device, data: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Membership mask — how dictionary-encoded LIKE is evaluated."""
    device.launch("scan_isin", len(data), work=2.0)
    return np.isin(data, values)


def arithmetic(device: Device, op: str, left, right, size: int) -> np.ndarray:
    """Elementwise arithmetic between columns and/or scalars."""
    ops = {"+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide}
    try:
        func = ops[op]
    except KeyError:
        raise ExecutionError(f"unknown arithmetic operator {op!r}") from None
    device.launch("scan_arith", size)
    if op == "/":
        lhs = np.asarray(left, dtype=np.float64)
        rhs = np.asarray(right, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.divide(lhs, rhs)
        return np.where(rhs == 0.0, np.nan, out)  # SQL NULL on x/0
    return func(left, right)


def logical_and(device: Device, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    device.launch("scan_and", len(left))
    return np.logical_and(left, right)


def logical_or(device: Device, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    device.launch("scan_or", len(left))
    return np.logical_or(left, right)


def logical_not(device: Device, mask: np.ndarray) -> np.ndarray:
    device.launch("scan_not", len(mask))
    return np.logical_not(mask)


# ---------------------------------------------------------------------------
# prefix sum / compaction
# ---------------------------------------------------------------------------


def prefix_sum(device: Device, mask: np.ndarray) -> tuple[np.ndarray, int]:
    """Exclusive prefix sum of a 0/1 mask -> (positions, total).

    The work factor reflects the log-depth of a parallel scan.
    """
    n = len(mask)
    device.launch("prefix_sum", n, work=_log_work(n))
    inclusive = np.cumsum(mask)
    total = int(inclusive[-1]) if n else 0
    positions = inclusive - mask  # exclusive scan
    return positions, total


def compact(device: Device, mask: np.ndarray) -> np.ndarray:
    """Indices of set positions (prefix-sum + scatter of a 0/1 vector)."""
    mask = mask.astype(bool)
    positions, total = prefix_sum(device, mask)
    device.launch("scatter", len(mask))
    out = np.empty(total, dtype=np.int64)
    out[positions[mask]] = np.nonzero(mask)[0]
    return out


def gather(device: Device, data: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Gather ``data[indices]``."""
    device.launch("gather", len(indices))
    return data[indices]


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

_REDUCE_IDENTITY = {"min": np.inf, "max": -np.inf, "sum": 0.0, "count": 0.0, "avg": np.nan}


def reduce_full(device: Device, values: np.ndarray, op: str) -> float:
    """A whole-column reduction; empty input yields the identity.

    ``avg`` over an empty column yields NaN, matching SQL NULL.
    """
    n = len(values)
    device.launch("reduce", n, work=_log_work(max(n, 1)))
    if op == "count":
        return float(n)
    if n == 0:
        return _REDUCE_IDENTITY[op]
    if op == "min":
        return float(values.min())
    if op == "max":
        return float(values.max())
    if op == "sum":
        return float(values.sum())
    if op == "avg":
        return float(values.mean())
    raise ExecutionError(f"unknown reduction {op!r}")


def segmented_reduce(
    device: Device,
    values: np.ndarray | None,
    segment_ids: np.ndarray,
    num_segments: int,
    op: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment reduction -> (result, counts).

    Segments with no rows receive the reduction identity (NaN for avg)
    and can be recognised through ``counts == 0``.  This primitive is
    what makes the *vectorization* optimization possible: one launch
    reduces the subquery result for a whole batch of outer tuples.
    """
    n = len(segment_ids)
    device.launch("segmented_reduce", n, work=_log_work(max(n, 1)))
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    if op == "count":
        return counts, counts
    assert values is not None
    result = np.full(num_segments, _REDUCE_IDENTITY[op], dtype=np.float64)
    if n:
        if op == "min":
            np.minimum.at(result, segment_ids, values)
        elif op == "max":
            np.maximum.at(result, segment_ids, values)
        elif op in ("sum", "avg"):
            result = np.zeros(num_segments, dtype=np.float64)
            np.add.at(result, segment_ids, values)
            if op == "avg":
                with np.errstate(invalid="ignore", divide="ignore"):
                    result = result / counts
        else:
            raise ExecutionError(f"unknown reduction {op!r}")
    if op == "avg" and n == 0:
        result = np.full(num_segments, np.nan)
    return result, counts


def segmented_any(
    device: Device, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Per-segment EXISTS — true where a segment has at least one row."""
    device.launch("segmented_any", len(segment_ids))
    counts = np.bincount(segment_ids, minlength=num_segments)
    return counts > 0


# ---------------------------------------------------------------------------
# hash join primitives
# ---------------------------------------------------------------------------


@dataclass
class JoinHash:
    """A build-side 'hash table'.

    Internally a sorted copy of the keys plus the sort permutation; the
    device is charged hash-build cost (``Ht`` per element, Eq. 2).
    """

    keys_sorted: np.ndarray
    order: np.ndarray

    def __len__(self) -> int:
        return len(self.keys_sorted)

    @property
    def nbytes(self) -> int:
        return self.keys_sorted.nbytes + self.order.nbytes


def hash_build(device: Device, keys: np.ndarray) -> JoinHash:
    """Build the join hash table over the build side's key column."""
    device.launch("hash_build", len(keys), work=2.0)
    order = np.argsort(keys, kind="stable")
    return JoinHash(keys[order], order)


def hash_probe(
    device: Device, table: JoinHash, probe_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Probe -> aligned (probe_indices, build_indices) of every match."""
    device.launch("hash_probe", len(probe_keys), work=2.0)
    lo = np.searchsorted(table.keys_sorted, probe_keys, side="left")
    hi = np.searchsorted(table.keys_sorted, probe_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    device.launch("join_expand", total)
    probe_idx = np.repeat(np.arange(len(probe_keys)), counts)
    starts = np.repeat(lo, counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    build_idx = table.order[starts + offsets]
    return probe_idx, build_idx


def semi_probe(device: Device, table: JoinHash, probe_keys: np.ndarray) -> np.ndarray:
    """EXISTS probe -> mask over probe side (the paper's Q4 semi-join)."""
    device.launch("semi_probe", len(probe_keys), work=2.0)
    lo = np.searchsorted(table.keys_sorted, probe_keys, side="left")
    hi = np.searchsorted(table.keys_sorted, probe_keys, side="right")
    return hi > lo


# ---------------------------------------------------------------------------
# sort and grouping
# ---------------------------------------------------------------------------


def sort_order(
    device: Device, keys: list[np.ndarray], descending: list[bool]
) -> np.ndarray:
    """Row permutation ordering by the given keys (first key primary)."""
    if not keys:
        raise ExecutionError("sort requires at least one key")
    n = len(keys[0])
    device.launch("sort", n, work=_log_work(max(n, 1)) * 2.0)
    adjusted = [(-k if desc else k) for k, desc in zip(keys, descending)]
    return np.lexsort(adjusted[::-1])


def group_ids(
    device: Device, keys: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Dense group ids for composite keys -> (ids, representative_rows).

    ``ids[i]`` is the group of row ``i``; ``representative_rows[g]`` is
    one row index belonging to group ``g`` (used to emit the group-key
    columns).
    """
    if not keys:
        raise ExecutionError("grouping requires at least one key")
    n = len(keys[0])
    device.launch("group_by", n, work=_log_work(max(n, 1)) * 2.0)
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    order = np.lexsort(keys[::-1])
    changed = np.zeros(n, dtype=bool)
    changed[0] = True
    for key in keys:
        sorted_key = key[order]
        changed[1:] |= sorted_key[1:] != sorted_key[:-1]
    gid_sorted = np.cumsum(changed) - 1
    ids = np.empty(n, dtype=np.int64)
    ids[order] = gid_sorted
    representatives = order[changed]
    return ids, representatives


# ---------------------------------------------------------------------------
# index primitives (paper Section III-D, "Indexing")
# ---------------------------------------------------------------------------


def binary_search_ranges(
    device: Device, sorted_keys: np.ndarray, probe_values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-probe [lo, hi) ranges in a sorted index column.

    This is the kernel behind indexed correlated scans: instead of a
    full table scan per iteration, each iteration touches only the
    matching slice.  The launch size is the probe count (log-cost per
    probe), not the table size.
    """
    n = len(probe_values)
    device.launch(
        "index_search", n, work=_log_work(max(len(sorted_keys), 1))
    )
    lo = np.searchsorted(sorted_keys, probe_values, side="left")
    hi = np.searchsorted(sorted_keys, probe_values, side="right")
    return lo, hi
