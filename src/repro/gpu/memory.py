"""Device memory pools (paper Section III-C).

Nested execution calls every operator of the subquery once per outer
tuple; paying a raw ``cudaMalloc``/``cudaFree`` per operator would
dominate runtime.  NestGPU instead keeps three linear pools —

* **meta**: host-side operator metadata (column types, tuple counts);
* **intermediate**: columns produced by one operator and consumed by
  the next;
* **inter-kernel**: scratch passed between the kernels of a single
  operator (0/1 vectors, prefix sums), cleared after every operator.

Allocation moves a tail pointer forward; deallocation moves it back.
Before each subquery iteration the generated drive program records the
tails and restores them afterwards, so iteration ``i+1`` reuses the
space of iteration ``i`` (paper Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import Device


@dataclass(frozen=True)
class PoolMark:
    """A saved tail position, restored after a subquery iteration."""

    pool_name: str
    position: int


class MemoryPool:
    """A linear (bump-pointer) allocator carved out of device memory.

    The pool grows lazily: device capacity is only charged when the
    high-water mark advances, so an 8 GB device can host pools whose
    *combined nominal* sizes exceed capacity as long as actual usage
    never does.
    """

    #: Tail/high-water mutators (see Device._GUARDED_METHODS): pools
    #: share the device's threading contract — single thread, or the
    #: owning session's lock held.
    _GUARDED_METHODS = ("alloc", "restore", "reset", "release")

    def __init__(self, device: Device, name: str, host_side: bool = False):
        self.device = device
        self.name = name
        self.host_side = host_side
        self._tail = 0
        self._reserved = 0

    @property
    def tail(self) -> int:
        return self._tail

    @property
    def reserved(self) -> int:
        """High-water mark — bytes charged against the device."""
        return self._reserved

    def alloc(self, nbytes: int) -> int:
        """Advance the tail by ``nbytes``; returns the start offset.

        Raises:
            DeviceMemoryError: when growing the high-water mark exceeds
                the device capacity (host-side pools never raise).
        """
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        offset = self._tail
        self._tail += nbytes
        if self._tail > self._reserved:
            grow = self._tail - self._reserved
            if not self.host_side:
                self.device.alloc(grow)
            self._reserved = self._tail
        return offset

    def mark(self) -> PoolMark:
        """Record the current tail (paper: ``hostPos = mempool.tail``)."""
        return PoolMark(self.name, self._tail)

    def restore(self, mark: PoolMark) -> None:
        """Move the tail back to a recorded position."""
        if mark.pool_name != self.name:
            raise ValueError(
                f"mark for pool {mark.pool_name!r} applied to {self.name!r}"
            )
        if mark.position > self._tail:
            raise ValueError("cannot restore a pool forward")
        self._tail = mark.position

    def reset(self) -> None:
        """Release everything (tail back to head)."""
        self._tail = 0

    def release(self) -> None:
        """Return the reserved high-water mark to the device."""
        if not self.host_side and self._reserved:
            self.device.free(self._reserved)
        self._reserved = 0
        self._tail = 0


class PoolSet:
    """The three pools used by a drive program."""

    _GUARDED_METHODS = (
        "restore_all", "clear_inter_kernel", "reset_tails", "release_all",
    )

    def __init__(self, device: Device):
        self.meta = MemoryPool(device, "meta", host_side=True)
        self.intermediate = MemoryPool(device, "intermediate")
        self.inter_kernel = MemoryPool(device, "inter_kernel")
        # observability: how many times iteration space was reclaimed by
        # rewinding the tails (vs. raw malloc/free in the pool-less mode)
        self.restores = 0

    def mark_all(self) -> tuple[PoolMark, PoolMark]:
        """Marks for the pools that survive across operators."""
        return self.meta.mark(), self.intermediate.mark()

    def restore_all(self, marks: tuple[PoolMark, PoolMark]) -> None:
        meta_mark, inter_mark = marks
        self.meta.restore(meta_mark)
        self.intermediate.restore(inter_mark)
        self.restores += 1

    def clear_inter_kernel(self) -> None:
        """Called after every operator (paper: tail = head)."""
        self.inter_kernel.reset()

    def reset_tails(self) -> None:
        """End-of-query rewind that *keeps* the reserved high-water.

        A session calls this between queries instead of
        :meth:`release_all`: the next query bump-allocates into space
        the device already accounts for, so pool growth (and the
        capacity it claims) is amortised across the whole session.
        """
        self.meta.reset()
        self.intermediate.reset()
        self.inter_kernel.reset()

    def high_water(self) -> dict[str, int]:
        """Reserved bytes per pool — survives :meth:`reset_tails`."""
        return {
            pool.name: pool.reserved
            for pool in (self.meta, self.intermediate, self.inter_kernel)
        }

    def release_all(self) -> None:
        self.meta.release()
        self.intermediate.release()
        self.inter_kernel.release()


class RawDeviceAllocator:
    """Per-operator raw malloc/free, for systems without pools.

    OmniSci-like execution and the pool ablation route intermediate
    allocations through this allocator, paying the modelled malloc
    overhead on every call.
    """

    _GUARDED_METHODS = ("alloc", "free_all")

    def __init__(self, device: Device):
        self.device = device
        self._live: list[int] = []

    def alloc(self, nbytes: int) -> int:
        self.device.alloc(nbytes, raw=True)
        self._live.append(nbytes)
        return len(self._live) - 1

    def free_all(self) -> None:
        for nbytes in self._live:
            self.device.free(nbytes, raw=True)
        self._live.clear()

    @property
    def outstanding(self) -> int:
        """Live raw allocations (zero after every ``end_query``)."""
        return len(self._live)
