"""The simulated GPU device: clock, memory accounting, kernel launches.

The device computes nothing itself — kernels (see
:mod:`repro.gpu.kernels`) do real numpy work on the host while charging
the device clock according to the spec's timing model.  This keeps the
results exact and the reported times analytical, which is the
substitution documented in DESIGN.md section 2.
"""

from __future__ import annotations

import math

from ..errors import DeviceMemoryError
from ..obs.tracer import NULL_TRACER
from .spec import DeviceSpec
from .stats import ExecutionStats


class _FusionScope:
    """Accumulator for kernel launches absorbed into one fused launch.

    While a scope is open on a device, :meth:`Device.launch` adds its
    iteration count here instead of charging the clock; closing the
    scope charges a single launch of the combined work.
    """

    __slots__ = ("tag", "iterations", "kernels", "elements")

    def __init__(self, tag: str):
        self.tag = tag
        self.iterations = 0.0  # sum of ceil(elements/threads) * work
        self.kernels = 0
        self.elements = 0  # widest absorbed launch, for the trace span


class Device:
    """A simulated GPU accumulating modelled time and memory usage.

    A :class:`~repro.obs.tracer.Tracer` may be attached; every charge
    then also records a leaf span on the modelled clock.  The default
    is the no-op tracer, so untraced runs pay one ``enabled`` check per
    charge and their modelled times are bit-identical.

    Threading contract: the device is **not** internally synchronized
    — per-charge locking would tax the hot path every modelled time is
    calibrated against.  All mutation must come from a single thread
    or happen while holding the owning session's lock; the methods in
    ``_GUARDED_METHODS`` are the mutation entry points a
    :class:`~repro.serve.threadguard.ThreadGuard` instruments to
    enforce that contract in tests.
    """

    #: Mutation entry points, in ThreadGuard's vocabulary: each call
    #: reads and writes the clock/stats/memory accounting.
    _GUARDED_METHODS = (
        "alloc", "free", "launch", "materialize",
        "transfer_h2d", "transfer_d2h", "transfer_peer", "reset",
        "begin_fused", "end_fused",
    )

    def __init__(self, spec: DeviceSpec, tracer=None):
        self.spec = spec
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.stats = ExecutionStats()
        self._in_use = 0
        # optional observer of charged costs (a cost-model Calibrator):
        # receives every kernel/transfer/materialization observation.
        # Like the tracer, None keeps the hot path at one attribute
        # check and modelled times bit-identical.
        self.sampler = None
        # open fusion scope (see begin_fused); None keeps launch() at
        # one attribute check when fusion is off.
        self._fusion = None

    # -- memory ---------------------------------------------------------

    @property
    def memory_in_use(self) -> int:
        return self._in_use

    @property
    def memory_free(self) -> int:
        return self.spec.memory_bytes - self._in_use

    def alloc(self, nbytes: int, raw: bool = False) -> int:
        """Reserve ``nbytes`` of device memory.

        Args:
            nbytes: allocation size.
            raw: charge the per-call malloc overhead (pools pass False —
                their whole purpose is to amortise this cost).

        Raises:
            DeviceMemoryError: if the allocation exceeds capacity.
        """
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self._in_use + nbytes > self.spec.memory_bytes:
            raise DeviceMemoryError(nbytes, self._in_use, self.spec.memory_bytes)
        self._in_use += nbytes
        if self._in_use > self.stats.peak_device_bytes:
            self.stats.peak_device_bytes = self._in_use
        if raw:
            self.stats.malloc_calls += 1
            self.stats.malloc_time_ns += self.spec.malloc_overhead_ns
            if self.tracer.enabled:
                self.tracer.leaf(
                    "malloc", "malloc", self.spec.malloc_overhead_ns,
                    bytes=nbytes,
                )
        return nbytes

    def free(self, nbytes: int, raw: bool = False) -> None:
        """Release ``nbytes`` previously allocated."""
        if nbytes > self._in_use:
            raise ValueError(
                f"freeing {nbytes} B but only {self._in_use} B in use"
            )
        self._in_use -= nbytes
        if raw:
            self.stats.malloc_calls += 1
            self.stats.malloc_time_ns += self.spec.malloc_overhead_ns

    # -- kernels ----------------------------------------------------------

    def launch(self, tag: str, elements: int, work: float = 1.0) -> float:
        """Charge one kernel launch over ``elements`` data items.

        ``work`` scales the per-iteration cost for kernels doing more
        than one memory access per element (e.g. hash build ~ 2x a
        plain scan, sort ~ log n).  Returns the charged nanoseconds.
        """
        iterations = math.ceil(elements / self.spec.threads) if elements > 0 else 0
        if self._fusion is not None:
            scope = self._fusion
            scope.iterations += iterations * work
            scope.kernels += 1
            if elements > scope.elements:
                scope.elements = elements
            return 0.0
        time_ns = self.spec.launch_overhead_ns + iterations * self.spec.iteration_ns * work
        self.stats.kernel_launches += 1
        self.stats.kernel_time_ns += time_ns
        self.stats.kernel_time_by_tag[tag] = (
            self.stats.kernel_time_by_tag.get(tag, 0.0) + time_ns
        )
        self.stats.launches_by_tag[tag] = self.stats.launches_by_tag.get(tag, 0) + 1
        if self.sampler is not None:
            self.sampler.record_kernel(elements, work, time_ns)
        if self.tracer.enabled:
            self.tracer.leaf(tag, "kernel", time_ns, elements=elements)
        return time_ns

    def begin_fused(self, tag: str) -> "_FusionScope | None":
        """Open a fusion scope: subsequent :meth:`launch` calls
        accumulate into one fused launch charged by :meth:`end_fused`.

        Returns the scope token, or ``None`` when a scope is already
        open — nested fused regions flatten into the outer launch, and
        the matching ``end_fused(None)`` is a no-op.
        """
        if self._fusion is not None:
            return None
        self._fusion = _FusionScope(tag)
        return self._fusion

    def end_fused(self, scope: "_FusionScope | None") -> float:
        """Close a fusion scope and charge the single combined launch.

        The fused launch pays one ``launch_overhead_ns`` plus the sum
        of every absorbed kernel's iteration time — the intermediate
        launch overheads are exactly what fusion eliminates.  An empty
        scope (no launches absorbed) charges nothing.
        """
        if scope is None or scope is not self._fusion:
            return 0.0
        self._fusion = None
        if scope.kernels == 0:
            return 0.0
        time_ns = (
            self.spec.launch_overhead_ns
            + scope.iterations * self.spec.iteration_ns
        )
        self.stats.kernel_launches += 1
        self.stats.fused_launches += 1
        self.stats.fused_kernels += scope.kernels
        self.stats.kernel_time_ns += time_ns
        self.stats.kernel_time_by_tag[scope.tag] = (
            self.stats.kernel_time_by_tag.get(scope.tag, 0.0) + time_ns
        )
        self.stats.launches_by_tag[scope.tag] = (
            self.stats.launches_by_tag.get(scope.tag, 0) + 1
        )
        if self.sampler is not None:
            # elements=threads makes ceil(elements/threads) == 1, so the
            # sample's x is exactly the combined iteration count and the
            # fused charge stays on the calibrator's C + K*x line.
            self.sampler.record_kernel(
                self.spec.threads, scope.iterations, time_ns
            )
        if self.tracer.enabled:
            self.tracer.leaf(
                scope.tag, "kernel", time_ns,
                elements=scope.elements, fused_kernels=scope.kernels,
            )
        return time_ns

    def materialize(self, nbytes: int) -> float:
        """Charge the materialization cost of writing ``nbytes`` results."""
        time_ns = nbytes * self.spec.materialize_ns_per_byte
        self.stats.materialize_bytes += nbytes
        self.stats.materialize_time_ns += time_ns
        if self.sampler is not None:
            self.sampler.record_materialize(nbytes, time_ns)
        if self.tracer.enabled:
            self.tracer.leaf("materialize", "materialize", time_ns, bytes=nbytes)
        return time_ns

    # -- transfers ----------------------------------------------------------

    def transfer_h2d(self, nbytes: int) -> float:
        """Charge a host-to-device PCIe transfer."""
        time_ns = nbytes / self.spec.pcie_bytes_per_ns
        self.stats.h2d_bytes += nbytes
        self.stats.h2d_time_ns += time_ns
        if self.sampler is not None:
            self.sampler.record_transfer(nbytes, time_ns)
        if self.tracer.enabled:
            self.tracer.leaf("h2d", "transfer", time_ns, bytes=nbytes)
        return time_ns

    def transfer_d2h(self, nbytes: int) -> float:
        """Charge a device-to-host PCIe transfer."""
        time_ns = nbytes / self.spec.pcie_bytes_per_ns
        self.stats.d2h_bytes += nbytes
        self.stats.d2h_time_ns += time_ns
        if self.sampler is not None:
            self.sampler.record_transfer(nbytes, time_ns)
        if self.tracer.enabled:
            self.tracer.leaf("d2h", "transfer", time_ns, bytes=nbytes)
        return time_ns

    def transfer_peer(self, nbytes: int, link, peer: int) -> float:
        """Charge a device-to-device copy over an interconnect link.

        Both ends of a peer copy are busy for its duration, so the
        :class:`DeviceGroup` charges this on the sender *and* the
        receiver; ``peer`` is the other device's index, recorded on the
        trace span only.
        """
        time_ns = link.transfer_ns(nbytes)
        self.stats.peer_bytes += nbytes
        self.stats.peer_time_ns += time_ns
        if self.tracer.enabled:
            self.tracer.leaf("p2p", "transfer", time_ns, bytes=nbytes, peer=peer)
        return time_ns

    # -- bookkeeping ----------------------------------------------------------

    def snapshot(self) -> ExecutionStats:
        """A copy of the running statistics (diff two to time a span)."""
        return self.stats.copy()

    def reset(self, rebase_peak: bool = False) -> None:
        """Clear the clock and counters; memory accounting is kept.

        ``rebase_peak=True`` seeds the fresh stats' high-water mark with
        the memory currently in use, so a per-query snapshot taken by a
        long-lived session reports the standing residency (resident
        columns, retained pools) even if the query itself never
        allocates.
        """
        self.stats = ExecutionStats()
        if rebase_peak:
            self.stats.peak_device_bytes = self._in_use
        if self.tracer.enabled:
            # rebase so a trace spanning the reset stays monotonic
            self.tracer.bind_device(self)
