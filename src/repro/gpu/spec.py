"""Simulated device specifications.

The timing model follows the paper's cost formulas: a kernel costs a
fixed launch constant ``C`` plus ``K_i`` per thread-iteration, where a
kernel over ``D_i`` elements on ``Th`` concurrent threads performs
``ceil(D_i / Th)`` iterations per thread (Eq. 1).  Materialization
costs ``M`` per byte written.  Transfers move at PCIe bandwidth.

Two presets mirror the paper's hardware: a Tesla V100 (32 GB HBM, the
server GPU of Figures 8-13 and 15-16) and a GTX 1080 (8 GB GDDR5, the
desktop GPU of the Figure 14 memory experiment).  ``capacity_scale``
shrinks device memory in proportion to the micro-scale data so the
out-of-memory crossover lands at the same scale factor as on real
hardware (see DESIGN.md section 2).  An ``a100()`` preset models a
modern HBM2e node for multi-device (sharded) runs.

Device *groups* add a modelled interconnect: :class:`LinkSpec` is one
directed peer link (bandwidth + per-message latency, charged exactly
like PCIe is), :class:`InterconnectSpec` the full-mesh fabric with
presets for PCIe peer-to-peer and NVLink-class links.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of a simulated GPU.

    Attributes:
        name: human-readable device name.
        memory_bytes: device memory capacity.
        threads: total concurrent hardware threads (``Th`` in Eq. 1).
        launch_overhead_ns: fixed cost ``C`` of launching one kernel.
        iteration_ns: default ``K_i`` — time of one thread-iteration of
            a simple elementwise kernel.
        materialize_ns_per_byte: ``M`` — cost of writing one result byte.
        pcie_bytes_per_ns: host<->device transfer bandwidth.
        malloc_overhead_ns: cost of one raw device malloc/free pair;
            memory pools exist to avoid paying this per operator.
    """

    name: str
    memory_bytes: int
    threads: int
    launch_overhead_ns: float
    iteration_ns: float
    materialize_ns_per_byte: float
    pcie_bytes_per_ns: float
    malloc_overhead_ns: float

    @staticmethod
    def v100(capacity_scale: float = 1.0) -> "DeviceSpec":
        """The paper's server GPU: Tesla V100, 32 GB HBM2, PCIe 3 x16."""
        return DeviceSpec(
            name="tesla-v100",
            memory_bytes=int(32 * 2**30 * capacity_scale),
            threads=163_840,  # 80 SMs x 2048 resident threads
            launch_overhead_ns=5_000.0,
            iteration_ns=220.0,
            materialize_ns_per_byte=0.004,
            pcie_bytes_per_ns=12.0,  # ~12 GB/s effective
            malloc_overhead_ns=80_000.0,
        )

    @staticmethod
    def gtx1080(capacity_scale: float = 1.0) -> "DeviceSpec":
        """The paper's desktop GPU: GTX 1080, 8 GB GDDR5X."""
        return DeviceSpec(
            name="gtx-1080",
            memory_bytes=int(8 * 2**30 * capacity_scale),
            threads=40_960,  # 20 SMs x 2048 resident threads
            launch_overhead_ns=6_000.0,
            iteration_ns=340.0,
            materialize_ns_per_byte=0.007,
            pcie_bytes_per_ns=10.0,
            malloc_overhead_ns=90_000.0,
        )

    @staticmethod
    def a100(capacity_scale: float = 1.0) -> "DeviceSpec":
        """A modern HBM2e node GPU: A100-SXM 80 GB, PCIe 4 x16.

        Not a paper device — added for multi-device (sharded) runs so a
        :class:`DeviceGroup` can model a contemporary NVLink node
        rather than only the paper's 2019-era hardware.
        """
        return DeviceSpec(
            name="a100-sxm-80gb",
            memory_bytes=int(80 * 2**30 * capacity_scale),
            threads=221_184,  # 108 SMs x 2048 resident threads
            launch_overhead_ns=4_000.0,
            iteration_ns=150.0,
            materialize_ns_per_byte=0.002,
            pcie_bytes_per_ns=24.0,  # PCIe 4 x16, ~24 GB/s effective
            malloc_overhead_ns=70_000.0,
        )

    def with_memory(self, memory_bytes: int) -> "DeviceSpec":
        """A copy of this spec with a different memory capacity."""
        return replace(self, memory_bytes=memory_bytes)


@dataclass(frozen=True)
class LinkSpec:
    """One directed device-to-device link of the modelled interconnect.

    A peer copy of ``n`` bytes costs ``latency_ns + n / bytes_per_ns``,
    the same shape as a PCIe transfer plus an explicit per-message
    setup cost (NVLink/P2P copies are latency-bound for the small
    per-pair messages a repartition produces, so latency is modelled
    separately instead of being folded into bandwidth).
    """

    bytes_per_ns: float
    latency_ns: float

    def transfer_ns(self, nbytes: int) -> float:
        """Modelled time to move ``nbytes`` over this link."""
        return self.latency_ns + nbytes / self.bytes_per_ns


@dataclass(frozen=True)
class InterconnectSpec:
    """The device-to-device fabric of a :class:`DeviceGroup`.

    A full mesh: every ordered device pair communicates over
    ``default_link`` unless an override is given for that pair.
    ``overrides`` is a tuple of ``(src, dst, LinkSpec)`` triples so the
    spec stays hashable/frozen like :class:`DeviceSpec`.
    """

    name: str
    default_link: LinkSpec
    overrides: tuple = ()

    def link(self, src: int, dst: int) -> LinkSpec:
        """The link used for transfers from device ``src`` to ``dst``."""
        for over_src, over_dst, link in self.overrides:
            if over_src == src and over_dst == dst:
                return link
        return self.default_link

    @staticmethod
    def pcie_p2p() -> "InterconnectSpec":
        """Peer copies staged over the shared PCIe switch (no NVLink).

        Slower than the host link and latency-heavy: both directions
        of the copy cross the same switch and the DMA engines must
        synchronise, so effective bandwidth is below a dedicated
        host transfer.
        """
        return InterconnectSpec(
            name="pcie-p2p",
            default_link=LinkSpec(bytes_per_ns=8.0, latency_ns=2_500.0),
        )

    @staticmethod
    def nvlink() -> "InterconnectSpec":
        """NVLink 2.0-class point-to-point links (V100 NVLink bridge)."""
        return InterconnectSpec(
            name="nvlink",
            default_link=LinkSpec(bytes_per_ns=40.0, latency_ns=1_300.0),
        )

    @staticmethod
    def nvswitch() -> "InterconnectSpec":
        """NVSwitch fabric (A100 node): high bandwidth, low latency."""
        return InterconnectSpec(
            name="nvswitch",
            default_link=LinkSpec(bytes_per_ns=100.0, latency_ns=700.0),
        )

    @staticmethod
    def from_name(name: str) -> "InterconnectSpec":
        """Resolve a CLI preset name (``pcie``, ``nvlink``, ``nvswitch``)."""
        presets = {
            "pcie": InterconnectSpec.pcie_p2p,
            "pcie-p2p": InterconnectSpec.pcie_p2p,
            "nvlink": InterconnectSpec.nvlink,
            "nvswitch": InterconnectSpec.nvswitch,
        }
        try:
            return presets[name]()
        except KeyError:
            raise ValueError(
                f"unknown interconnect preset {name!r}; "
                f"choose from {sorted(presets)}"
            ) from None
