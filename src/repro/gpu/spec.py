"""Simulated device specifications.

The timing model follows the paper's cost formulas: a kernel costs a
fixed launch constant ``C`` plus ``K_i`` per thread-iteration, where a
kernel over ``D_i`` elements on ``Th`` concurrent threads performs
``ceil(D_i / Th)`` iterations per thread (Eq. 1).  Materialization
costs ``M`` per byte written.  Transfers move at PCIe bandwidth.

Two presets mirror the paper's hardware: a Tesla V100 (32 GB HBM, the
server GPU of Figures 8-13 and 15-16) and a GTX 1080 (8 GB GDDR5, the
desktop GPU of the Figure 14 memory experiment).  ``capacity_scale``
shrinks device memory in proportion to the micro-scale data so the
out-of-memory crossover lands at the same scale factor as on real
hardware (see DESIGN.md section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of a simulated GPU.

    Attributes:
        name: human-readable device name.
        memory_bytes: device memory capacity.
        threads: total concurrent hardware threads (``Th`` in Eq. 1).
        launch_overhead_ns: fixed cost ``C`` of launching one kernel.
        iteration_ns: default ``K_i`` — time of one thread-iteration of
            a simple elementwise kernel.
        materialize_ns_per_byte: ``M`` — cost of writing one result byte.
        pcie_bytes_per_ns: host<->device transfer bandwidth.
        malloc_overhead_ns: cost of one raw device malloc/free pair;
            memory pools exist to avoid paying this per operator.
    """

    name: str
    memory_bytes: int
    threads: int
    launch_overhead_ns: float
    iteration_ns: float
    materialize_ns_per_byte: float
    pcie_bytes_per_ns: float
    malloc_overhead_ns: float

    @staticmethod
    def v100(capacity_scale: float = 1.0) -> "DeviceSpec":
        """The paper's server GPU: Tesla V100, 32 GB HBM2, PCIe 3 x16."""
        return DeviceSpec(
            name="tesla-v100",
            memory_bytes=int(32 * 2**30 * capacity_scale),
            threads=163_840,  # 80 SMs x 2048 resident threads
            launch_overhead_ns=5_000.0,
            iteration_ns=220.0,
            materialize_ns_per_byte=0.004,
            pcie_bytes_per_ns=12.0,  # ~12 GB/s effective
            malloc_overhead_ns=80_000.0,
        )

    @staticmethod
    def gtx1080(capacity_scale: float = 1.0) -> "DeviceSpec":
        """The paper's desktop GPU: GTX 1080, 8 GB GDDR5X."""
        return DeviceSpec(
            name="gtx-1080",
            memory_bytes=int(8 * 2**30 * capacity_scale),
            threads=40_960,  # 20 SMs x 2048 resident threads
            launch_overhead_ns=6_000.0,
            iteration_ns=340.0,
            materialize_ns_per_byte=0.007,
            pcie_bytes_per_ns=10.0,
            malloc_overhead_ns=90_000.0,
        )

    def with_memory(self, memory_bytes: int) -> "DeviceSpec":
        """A copy of this spec with a different memory capacity."""
        return replace(self, memory_bytes=memory_bytes)
